//! Plan ⇄ bytes: the stable binary encoding of graphs and legalized
//! execution plans.
//!
//! The paper's deployment story — "the resulting cost tables are tiny …
//! and ship them with the trained model" — extends naturally to the
//! *solution*: a PBQP plan solved once on a big build host should ship to
//! the serving fleet as bytes. This module provides the section encoders
//! the facade crate's compiled-model artifact is assembled from:
//!
//! * [`put_graph`] / [`get_graph`] — every layer (including full conv
//!   scenarios) and every edge, enough to reconstruct the [`DnnGraph`]
//!   and recompute its structural fingerprint for validation;
//! * [`put_strategy`] / [`get_strategy`] — the [`Strategy`] lineup;
//! * [`put_plan`] / [`get_plan`] — assignments, legalization chains,
//!   boundary conversions, predictions and solver statistics.
//!
//! Encodings build on the little-endian primitives and representation
//! codecs of [`pbqp_dnn_tensor::wire`]; decoding never panics on corrupt
//! input — every failure surfaces as a [`WireError`].

use pbqp_dnn_graph::{ConvScenario, DnnGraph, Layer, LayerKind, PoolKind};
use pbqp_dnn_primitives::Family;
use pbqp_dnn_tensor::wire::{self, WireError, WireReader};
use pbqp_solver::SolveStats;

use crate::{AssignmentKind, EdgeLegalization, ExecutionPlan, NodeAssignment, Strategy};

// ---------------------------------------------------------------------
// Graph.
// ---------------------------------------------------------------------

/// Encodes a [`DnnGraph`]: layer count, each layer (name + kind), edge
/// count, each edge as a dense index pair.
pub fn put_graph(out: &mut Vec<u8>, graph: &DnnGraph) {
    wire::put_usize(out, graph.len());
    for node in graph.node_ids() {
        let layer = graph.layer(node);
        wire::put_str(out, &layer.name);
        put_layer_kind(out, &layer.kind);
    }
    let edges = graph.edges();
    wire::put_usize(out, edges.len());
    for (from, to) in edges {
        wire::put_usize(out, from.index());
        wire::put_usize(out, to.index());
    }
}

/// Decodes a graph written by [`put_graph`].
///
/// # Errors
///
/// [`WireError`] on truncation, unknown tags, or invalid structure
/// (out-of-range edge endpoints, zero-kernel conv scenarios).
pub fn get_graph(r: &mut WireReader<'_>) -> Result<DnnGraph, WireError> {
    let n = r.len_prefix(1)?;
    let mut graph = DnnGraph::new();
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str()?;
        let kind = get_layer_kind(r)?;
        // `try_add` revalidates layer parameters (degenerate pool
        // windows), so corrupt streams surface as WireError instead of
        // tripping the graph API's panicking construction checks.
        let id =
            graph.try_add(Layer::new(name, kind)).map_err(|e| WireError::Corrupt(e.to_string()))?;
        ids.push(id);
    }
    let edges = r.len_prefix(16)?;
    for _ in 0..edges {
        let from = r.usize()?;
        let to = r.usize()?;
        let (from, to) = match (ids.get(from), ids.get(to)) {
            (Some(&f), Some(&t)) => (f, t),
            _ => return Err(WireError::Corrupt(format!("edge {from} -> {to} out of range"))),
        };
        graph.connect(from, to).map_err(|e| WireError::Corrupt(e.to_string()))?;
    }
    Ok(graph)
}

fn put_layer_kind(out: &mut Vec<u8>, kind: &LayerKind) {
    match kind {
        LayerKind::Input { c, h, w } => {
            wire::put_u8(out, 0);
            wire::put_usize(out, *c);
            wire::put_usize(out, *h);
            wire::put_usize(out, *w);
        }
        LayerKind::Conv(s) => {
            wire::put_u8(out, 1);
            for dim in [s.c, s.h, s.w, s.stride, s.k, s.m, s.pad, s.batch] {
                wire::put_usize(out, dim);
            }
            wire::put_u32(out, u32::from(s.sparsity_pm));
        }
        LayerKind::Pool { kind, k, stride, pad } => {
            wire::put_u8(out, 2);
            wire::put_u8(out, matches!(kind, PoolKind::Avg) as u8);
            wire::put_usize(out, *k);
            wire::put_usize(out, *stride);
            wire::put_usize(out, *pad);
        }
        LayerKind::Relu => wire::put_u8(out, 3),
        LayerKind::Lrn => wire::put_u8(out, 4),
        LayerKind::Dropout => wire::put_u8(out, 5),
        LayerKind::FullyConnected { out: neurons } => {
            wire::put_u8(out, 6);
            wire::put_usize(out, *neurons);
        }
        LayerKind::Concat => wire::put_u8(out, 7),
        LayerKind::Softmax => wire::put_u8(out, 8),
        LayerKind::Add => wire::put_u8(out, 9),
    }
}

fn get_layer_kind(r: &mut WireReader<'_>) -> Result<LayerKind, WireError> {
    Ok(match r.u8()? {
        0 => LayerKind::Input { c: r.usize()?, h: r.usize()?, w: r.usize()? },
        1 => {
            let (c, h, w) = (r.usize()?, r.usize()?, r.usize()?);
            let (stride, k, m) = (r.usize()?, r.usize()?, r.usize()?);
            let (pad, batch) = (r.usize()?, r.usize()?);
            let sparsity = r.u32()?;
            if k == 0 || stride == 0 {
                return Err(WireError::Corrupt("conv scenario with k or stride 0".into()));
            }
            let sparsity = u16::try_from(sparsity)
                .map_err(|_| WireError::Corrupt("sparsity out of range".into()))?;
            LayerKind::Conv(
                ConvScenario::new(c, h, w, stride, k, m)
                    .with_pad(pad)
                    .with_sparsity_pm(sparsity)
                    .with_batch(batch),
            )
        }
        2 => {
            let kind = match r.u8()? {
                0 => PoolKind::Max,
                1 => PoolKind::Avg,
                code => return Err(WireError::Corrupt(format!("pool kind {code}"))),
            };
            LayerKind::Pool { kind, k: r.usize()?, stride: r.usize()?, pad: r.usize()? }
        }
        3 => LayerKind::Relu,
        4 => LayerKind::Lrn,
        5 => LayerKind::Dropout,
        6 => LayerKind::FullyConnected { out: r.usize()? },
        7 => LayerKind::Concat,
        8 => LayerKind::Softmax,
        9 => LayerKind::Add,
        tag => return Err(WireError::Corrupt(format!("layer kind tag {tag}"))),
    })
}

// ---------------------------------------------------------------------
// Strategy.
// ---------------------------------------------------------------------

fn family_code(f: Family) -> u8 {
    Family::ALL.iter().position(|&x| x == f).expect("family in ALL") as u8
}

/// Encodes a [`Strategy`] as a variant tag plus parameters.
pub fn put_strategy(out: &mut Vec<u8>, strategy: Strategy) {
    match strategy {
        Strategy::Pbqp => wire::put_u8(out, 0),
        Strategy::PbqpHeuristic => wire::put_u8(out, 1),
        Strategy::Sum2d => wire::put_u8(out, 2),
        Strategy::FamilyBest(f) => {
            wire::put_u8(out, 3);
            wire::put_u8(out, family_code(f));
        }
        Strategy::LocalOptimalChw => wire::put_u8(out, 4),
        Strategy::CaffeLike => wire::put_u8(out, 5),
        Strategy::VendorLike { vector_width } => {
            wire::put_u8(out, 6);
            wire::put_usize(out, vector_width);
        }
    }
}

/// Decodes a [`Strategy`] written by [`put_strategy`].
///
/// # Errors
///
/// [`WireError::Corrupt`] on unknown variant or family tags.
pub fn get_strategy(r: &mut WireReader<'_>) -> Result<Strategy, WireError> {
    Ok(match r.u8()? {
        0 => Strategy::Pbqp,
        1 => Strategy::PbqpHeuristic,
        2 => Strategy::Sum2d,
        3 => {
            let code = r.u8()? as usize;
            let family = Family::ALL
                .get(code)
                .copied()
                .ok_or_else(|| WireError::Corrupt(format!("family code {code}")))?;
            Strategy::FamilyBest(family)
        }
        4 => Strategy::LocalOptimalChw,
        5 => Strategy::CaffeLike,
        6 => Strategy::VendorLike { vector_width: r.usize()? },
        tag => return Err(WireError::Corrupt(format!("strategy tag {tag}"))),
    })
}

// ---------------------------------------------------------------------
// Plan.
// ---------------------------------------------------------------------

/// Encodes a legalized [`ExecutionPlan`] (everything except the graph it
/// refers to, which is encoded separately and revalidated on load).
pub fn put_plan(out: &mut Vec<u8>, plan: &ExecutionPlan) {
    put_strategy(out, plan.strategy);
    wire::put_usize(out, plan.assignments.len());
    for a in &plan.assignments {
        wire::put_usize(out, a.node.index());
        match &a.kind {
            AssignmentKind::Conv { primitive, input_repr, output_repr, cost_us } => {
                wire::put_u8(out, 0);
                wire::put_str(out, primitive);
                wire::put_repr(out, *input_repr);
                wire::put_repr(out, *output_repr);
                wire::put_f64(out, *cost_us);
            }
            AssignmentKind::Op { kernel, input_repr, output_repr, cost_us } => {
                wire::put_u8(out, 1);
                wire::put_str(out, kernel);
                wire::put_repr(out, *input_repr);
                wire::put_repr(out, *output_repr);
                wire::put_f64(out, *cost_us);
            }
            AssignmentKind::Source { repr } => {
                wire::put_u8(out, 2);
                wire::put_repr(out, *repr);
            }
        }
    }
    wire::put_usize(out, plan.edges.len());
    for e in &plan.edges {
        wire::put_usize(out, e.from.index());
        wire::put_usize(out, e.to.index());
        wire::put_chain(out, &e.chain);
        wire::put_f64(out, e.cost_us);
    }
    for conversions in [&plan.input_conversion, &plan.output_conversion] {
        wire::put_usize(out, conversions.len());
        for (node, chain, cost) in conversions {
            wire::put_usize(out, node.index());
            wire::put_chain(out, chain);
            wire::put_f64(out, *cost);
        }
    }
    wire::put_f64(out, plan.predicted_us);
    wire::put_u8(
        out,
        match plan.optimal {
            None => 0,
            Some(false) => 1,
            Some(true) => 2,
        },
    );
    match &plan.solve_stats {
        None => wire::put_u8(out, 0),
        Some(s) => {
            wire::put_u8(out, 1);
            for v in [s.r0, s.r1, s.r2, s.core_nodes] {
                wire::put_usize(out, v);
            }
            wire::put_u64(out, s.bb_steps);
        }
    }
    wire::put_f64(out, plan.solve_time_us);
}

/// Decodes a plan written by [`put_plan`], resolving node references
/// against `graph` (which must be the graph the plan was produced for —
/// the artifact layer guarantees this by fingerprint validation).
///
/// # Errors
///
/// [`WireError`] on truncation, unknown tags, or node references the
/// graph cannot resolve.
pub fn get_plan(r: &mut WireReader<'_>, graph: &DnnGraph) -> Result<ExecutionPlan, WireError> {
    let node = |r: &mut WireReader<'_>| -> Result<_, WireError> {
        let ix = r.usize()?;
        graph.node_id(ix).ok_or_else(|| WireError::Corrupt(format!("node index {ix} out of range")))
    };

    let strategy = get_strategy(r)?;
    let n = r.len_prefix(1)?;
    if n != graph.len() {
        return Err(WireError::Corrupt(format!(
            "plan covers {n} nodes, graph has {}",
            graph.len()
        )));
    }
    let mut assignments = Vec::with_capacity(n);
    for ix in 0..n {
        let id = node(r)?;
        if id.index() != ix {
            return Err(WireError::Corrupt("assignments out of node order".into()));
        }
        let kind = match r.u8()? {
            0 => AssignmentKind::Conv {
                primitive: r.str()?,
                input_repr: wire::get_repr(r)?,
                output_repr: wire::get_repr(r)?,
                cost_us: r.f64()?,
            },
            1 => AssignmentKind::Op {
                kernel: r.str()?,
                input_repr: wire::get_repr(r)?,
                output_repr: wire::get_repr(r)?,
                cost_us: r.f64()?,
            },
            2 => AssignmentKind::Source { repr: wire::get_repr(r)? },
            tag => return Err(WireError::Corrupt(format!("assignment tag {tag}"))),
        };
        assignments.push(NodeAssignment { node: id, kind });
    }
    let n_edges = r.len_prefix(1)?;
    let mut edges = Vec::with_capacity(n_edges);
    for _ in 0..n_edges {
        edges.push(EdgeLegalization {
            from: node(r)?,
            to: node(r)?,
            chain: wire::get_chain(r)?,
            cost_us: r.f64()?,
        });
    }
    let mut conversions = [Vec::new(), Vec::new()];
    for list in &mut conversions {
        let n = r.len_prefix(1)?;
        for _ in 0..n {
            list.push((node(r)?, wire::get_chain(r)?, r.f64()?));
        }
    }
    let [input_conversion, output_conversion] = conversions;
    let predicted_us = r.f64()?;
    let optimal = match r.u8()? {
        0 => None,
        1 => Some(false),
        2 => Some(true),
        tag => return Err(WireError::Corrupt(format!("optimal tag {tag}"))),
    };
    let solve_stats = match r.u8()? {
        0 => None,
        1 => Some(SolveStats {
            r0: r.usize()?,
            r1: r.usize()?,
            r2: r.usize()?,
            core_nodes: r.usize()?,
            bb_steps: r.u64()?,
        }),
        tag => return Err(WireError::Corrupt(format!("solve-stats tag {tag}"))),
    };
    let solve_time_us = r.f64()?;
    Ok(ExecutionPlan {
        strategy,
        assignments,
        edges,
        input_conversion,
        output_conversion,
        predicted_us,
        optimal,
        solve_stats,
        solve_time_us,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Optimizer;
    use pbqp_dnn_cost::{AnalyticCost, MachineModel};
    use pbqp_dnn_graph::models;
    use pbqp_dnn_primitives::registry::{mixed_precision_library, Registry};

    fn round_trip_plan(plan: &ExecutionPlan, graph: &DnnGraph) -> ExecutionPlan {
        let mut buf = Vec::new();
        put_plan(&mut buf, plan);
        let mut r = WireReader::new(&buf);
        let back = get_plan(&mut r, graph).expect("plan decodes");
        assert!(r.is_empty(), "trailing bytes after plan");
        back
    }

    #[test]
    fn graphs_round_trip_with_identical_fingerprints() {
        for (name, graph) in [
            ("alexnet", models::alexnet()),
            ("googlenet", models::googlenet()),
            ("micro_mixed", models::micro_mixed()),
        ] {
            let mut buf = Vec::new();
            put_graph(&mut buf, &graph);
            let mut r = WireReader::new(&buf);
            let back = get_graph(&mut r).expect("graph decodes");
            assert!(r.is_empty());
            assert_eq!(back.fingerprint(), graph.fingerprint(), "{name}");
            assert_eq!(back.len(), graph.len());
            assert_eq!(back.edges(), graph.edges());
        }
    }

    #[test]
    fn strategies_round_trip() {
        let mut all = vec![
            Strategy::Pbqp,
            Strategy::PbqpHeuristic,
            Strategy::Sum2d,
            Strategy::LocalOptimalChw,
            Strategy::CaffeLike,
            Strategy::VendorLike { vector_width: 8 },
            Strategy::VendorLike { vector_width: 4 },
        ];
        all.extend(Strategy::family_bars());
        for s in all {
            let mut buf = Vec::new();
            put_strategy(&mut buf, s);
            let mut r = WireReader::new(&buf);
            assert_eq!(get_strategy(&mut r).unwrap(), s, "{}", s.label());
        }
    }

    #[test]
    fn mixed_precision_plans_round_trip_exactly() {
        let reg = Registry::new(mixed_precision_library());
        let cost = AnalyticCost::new(MachineModel::arm_a57_like(), 1);
        let opt = Optimizer::new(&reg, &cost);
        let graph = models::alexnet();
        for strategy in [Strategy::Pbqp, Strategy::CaffeLike] {
            let plan = opt.plan(&graph, strategy).unwrap();
            let back = round_trip_plan(&plan, &graph);
            assert_eq!(back.strategy, plan.strategy);
            assert_eq!(back.assignments, plan.assignments);
            assert_eq!(back.edges, plan.edges);
            assert_eq!(back.input_conversion, plan.input_conversion);
            assert_eq!(back.output_conversion, plan.output_conversion);
            assert_eq!(back.predicted_us.to_bits(), plan.predicted_us.to_bits());
            assert_eq!(back.optimal, plan.optimal);
            assert_eq!(back.solve_stats, plan.solve_stats);
            assert_eq!(back.solve_time_us.to_bits(), plan.solve_time_us.to_bits());
        }
    }

    #[test]
    fn corrupt_pool_windows_are_a_wire_error_not_a_panic() {
        // A stream encoding a pool layer with the degenerate parameters
        // `DnnGraph::add` panics on (k = 0, and pad >= k): decoding must
        // refuse with a WireError instead of panicking — a corrupted v2
        // artifact may carry exactly these bytes.
        for (k, stride, pad) in [(0usize, 2usize, 0usize), (2, 0, 0), (2, 1, 5)] {
            let mut bad = Vec::new();
            wire::put_usize(&mut bad, 2); // two layers
            wire::put_str(&mut bad, "data");
            wire::put_u8(&mut bad, 0); // input
            for d in [1usize, 4, 4] {
                wire::put_usize(&mut bad, d);
            }
            wire::put_str(&mut bad, "p");
            wire::put_u8(&mut bad, 2); // pool
            wire::put_u8(&mut bad, 0); // max
            wire::put_usize(&mut bad, k);
            wire::put_usize(&mut bad, stride);
            wire::put_usize(&mut bad, pad);
            wire::put_usize(&mut bad, 0); // no edges
            let mut r = WireReader::new(&bad);
            let err = get_graph(&mut r).unwrap_err();
            assert!(matches!(err, WireError::Corrupt(_)), "k={k} stride={stride} pad={pad}");
        }
    }

    #[test]
    fn decoding_against_the_wrong_graph_is_rejected() {
        let reg = Registry::new(mixed_precision_library());
        let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
        let opt = Optimizer::new(&reg, &cost);
        let graph = models::micro_alexnet();
        let plan = opt.plan(&graph, Strategy::Pbqp).unwrap();
        let mut buf = Vec::new();
        put_plan(&mut buf, &plan);
        let smaller = models::micro_mixed();
        let mut r = WireReader::new(&buf);
        assert!(matches!(get_plan(&mut r, &smaller), Err(WireError::Corrupt(_))));
    }

    #[test]
    fn truncated_plan_streams_error_cleanly() {
        let reg = Registry::new(mixed_precision_library());
        let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
        let opt = Optimizer::new(&reg, &cost);
        let graph = models::micro_mixed();
        let plan = opt.plan(&graph, Strategy::Pbqp).unwrap();
        let mut buf = Vec::new();
        put_plan(&mut buf, &plan);
        for cut in 0..buf.len() {
            let mut r = WireReader::new(&buf[..cut]);
            assert!(get_plan(&mut r, &graph).is_err(), "prefix {cut} decoded");
        }
    }
}
