use std::fmt;

use pbqp_dnn_primitives::Family;

/// How to choose a primitive for every layer (§5.5's comparison points).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// The paper's contribution: globally optimal selection via PBQP,
    /// including DT costs (exact branch-and-bound back-end).
    Pbqp,
    /// PBQP with the RN heuristic only — the ablation showing what the
    /// exact back-end buys.
    PbqpHeuristic,
    /// The common baseline: the textbook sum-of-single-channels primitive
    /// everywhere, canonical CHW layout.
    Sum2d,
    /// Per-layer fastest member of one family, replacing sum2d only when
    /// faster (the paper's per-family bars); layouts flow through, DT
    /// chains are inserted wherever neighbours disagree, and — crucially —
    /// their cost is *not* considered during selection, only paid after.
    FamilyBest(Family),
    /// Fastest primitive per layer among those consuming **and** producing
    /// the canonical CHW layout: the "Local Optimal (CHW)" bar.
    LocalOptimalChw,
    /// Caffe simulacrum: im2col + blocked GEMM for every convolution in
    /// canonical CHW, plus framework dispatch overhead.
    CaffeLike,
    /// Vendor-library simulacrum (MKL-DNN / ARM Compute Library class):
    /// greedy per-layer choice from a curated subset of vectorized
    /// primitives whose vector factor matches the platform width.
    VendorLike {
        /// The platform SIMD width the vendor library targets (8 ≈ AVX2,
        /// 4 ≈ NEON).
        vector_width: usize,
    },
}

impl Strategy {
    /// Display label matching the paper's figure legends.
    pub fn label(&self) -> String {
        match self {
            Strategy::Pbqp => "PBQP".into(),
            Strategy::PbqpHeuristic => "PBQP (RN heuristic)".into(),
            Strategy::Sum2d => "sum2d".into(),
            Strategy::FamilyBest(f) => f.name().into(),
            Strategy::LocalOptimalChw => "Local Optimal (CHW)".into(),
            Strategy::CaffeLike => "caffe".into(),
            Strategy::VendorLike { vector_width: 8 } => "mkldnn".into(),
            Strategy::VendorLike { vector_width: 4 } => "armcl".into(),
            Strategy::VendorLike { vector_width } => format!("vendor(vf{vector_width})"),
        }
    }

    /// A unique, stable key for plan caching. Unlike [`Strategy::label`]
    /// (which mirrors the paper's figure legends and can collide — e.g.
    /// `Sum2d` and `FamilyBest(Family::Sum2d)` both display as "sum2d"),
    /// every variant maps to a distinct key.
    pub fn cache_key(&self) -> String {
        match self {
            Strategy::Pbqp => "pbqp".into(),
            Strategy::PbqpHeuristic => "pbqp-heuristic".into(),
            Strategy::Sum2d => "sum2d".into(),
            Strategy::FamilyBest(f) => format!("family:{}", f.name()),
            Strategy::LocalOptimalChw => "local-optimal-chw".into(),
            Strategy::CaffeLike => "caffe-like".into(),
            Strategy::VendorLike { vector_width } => format!("vendor:{vector_width}"),
        }
    }

    /// Framework dispatch/marshalling overhead multiplier applied to the
    /// predicted time. Models Caffe's per-layer blob management; the
    /// library-call strategies have none.
    pub fn framework_overhead(&self) -> f64 {
        match self {
            Strategy::CaffeLike => 1.3,
            _ => 1.0,
        }
    }

    /// The per-family comparison bars of Figures 5–7, in legend order.
    pub fn family_bars() -> Vec<Strategy> {
        [Family::Direct, Family::Im2, Family::Kn2, Family::Winograd, Family::Fft]
            .into_iter()
            .map(Strategy::FamilyBest)
            .collect()
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_figure_legends() {
        assert_eq!(Strategy::Pbqp.label(), "PBQP");
        assert_eq!(Strategy::FamilyBest(Family::Winograd).label(), "winograd");
        assert_eq!(Strategy::VendorLike { vector_width: 8 }.label(), "mkldnn");
        assert_eq!(Strategy::VendorLike { vector_width: 4 }.label(), "armcl");
        assert_eq!(Strategy::LocalOptimalChw.label(), "Local Optimal (CHW)");
    }

    #[test]
    fn only_caffe_has_framework_overhead() {
        assert!(Strategy::CaffeLike.framework_overhead() > 1.0);
        assert_eq!(Strategy::Pbqp.framework_overhead(), 1.0);
        assert_eq!(Strategy::family_bars().len(), 5);
    }
}
