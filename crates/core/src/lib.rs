//! Optimal DNN primitive selection with PBQP — the paper's contribution.
//!
//! Given a DNN graph, a primitive library and a cost source, this crate
//! builds the PBQP instance of §3.2, with **every** node a first-class
//! decision:
//!
//! * every **convolution layer** becomes a PBQP node whose options are the
//!   candidate primitives and whose costs are their profiled/modelled
//!   execution times;
//! * every **other operator** (ReLU, pooling, LRN, concat, add, FC,
//!   softmax, dropout) becomes a node whose options are its op-kernel
//!   candidates over the full representation space — f32 at every layout
//!   plus int8 where quantized kernels exist — priced by the cost
//!   source's operator terms (the paper models these as zero-cost
//!   layout-only dummies, §5.2; generalizing them is what lets an int8
//!   island span conv → relu → pool → conv with no interior conversions);
//! * every **graph source** becomes a node choosing the representation
//!   the canonical f32 input is delivered in;
//! * every **edge** carries the all-pairs-shortest-path
//!   representation-transformation cost matrix between the producer's
//!   output repr and the consumer's input repr (§3.1).
//!
//! Solving the instance with the exact PBQP solver and **legalizing** the
//! winning assignment (materializing the DT chains on every edge, §3)
//! yields an [`ExecutionPlan`] the runtime can execute directly.
//!
//! The same machinery evaluates the paper's baseline strategies — per-layer
//! family bests, the canonical-layout local optimum, and the vendor-library
//! simulacra — so every bar of Figures 5–7 comes from one code path.
//!
//! For serving workloads, the [`PlanCache`] memoizes legalized plans by
//! (graph fingerprint, strategy, cost source): repeated requests for a
//! deployed model skip the profile and the solve entirely, and the cached
//! `Arc<ExecutionPlan>` feeds straight into the runtime's batched
//! executor (`Executor::run_batch` in `pbqp-dnn-runtime`).
//!
//! # Example
//!
//! ```
//! use pbqp_dnn_cost::{AnalyticCost, MachineModel};
//! use pbqp_dnn_graph::models;
//! use pbqp_dnn_primitives::registry::{full_library, Registry};
//! use pbqp_dnn_select::{Optimizer, Strategy};
//!
//! let registry = Registry::new(full_library());
//! let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
//! let optimizer = Optimizer::new(&registry, &cost);
//! let net = models::alexnet();
//!
//! let pbqp = optimizer.plan(&net, Strategy::Pbqp).unwrap();
//! let baseline = optimizer.plan(&net, Strategy::Sum2d).unwrap();
//! assert!(pbqp.predicted_us < baseline.predicted_us);
//! assert_eq!(pbqp.optimal, Some(true));
//! ```
//!
//! # Example: cached planning for repeated requests
//!
//! ```
//! use pbqp_dnn_cost::{AnalyticCost, MachineModel};
//! use pbqp_dnn_graph::models;
//! use pbqp_dnn_primitives::registry::{full_library, Registry};
//! use pbqp_dnn_select::{Optimizer, PlanCache, Strategy};
//!
//! let registry = Registry::new(full_library());
//! let cost = AnalyticCost::new(MachineModel::arm_a57_like(), 4);
//! let optimizer = Optimizer::new(&registry, &cost);
//! let net = models::alexnet();
//!
//! let cache = PlanCache::new();
//! let first = cache.plan(&optimizer, &net, Strategy::Pbqp).unwrap();
//! let second = cache.plan(&optimizer, &net, Strategy::Pbqp).unwrap();
//! assert!(std::sync::Arc::ptr_eq(&first, &second), "second request skipped the solve");
//! assert_eq!((cache.hits(), cache.misses()), (1, 1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod instance;
mod optimizer;
mod plan;
mod strategies;
pub mod wire;

pub use cache::{artifact_fingerprint, PlanCache};
pub use optimizer::{Optimizer, PlanError};
pub use plan::{AssignmentKind, EdgeLegalization, ExecutionPlan, NodeAssignment};
pub use strategies::Strategy;
