//! PBQP instance construction (§3.2): maps a DNN graph plus cost tables
//! onto a [`PbqpGraph`].
//!
//! Every node of the DNN is a decision node over concrete candidates:
//! conv layers select among the registry's primitives (priced by the cost
//! table), every other operator selects among its per-class op kernels
//! (priced directly by the cost source), and graph sources select the
//! representation the canonical f32 input is delivered in. The paper's
//! zero-cost "dummy node" shape (§5.2) is retired — non-conv option
//! vectors are `Repr`-typed (f32 at every layout ∪ int8 where kernels
//! exist), which is what lets one solve keep an int8 island quantized
//! across ReLU and pooling layers.

use std::collections::HashMap;

use pbqp_dnn_cost::{CostSource, CostTable, DtGraph, DtPathTable};
use pbqp_dnn_graph::{DnnGraph, LayerKind, NodeId};
use pbqp_dnn_primitives::registry::Registry;
use pbqp_dnn_primitives::OpSpec;
use pbqp_dnn_tensor::{DType, Layout, Repr};
use pbqp_solver::{CostMatrix, PbqpGraph, PbqpNodeId};

/// The options behind one PBQP node.
#[derive(Debug, Clone)]
pub(crate) enum NodeOptions {
    /// Conv node: option `i` is the `i`-th candidate primitive (by name).
    Conv(Vec<String>),
    /// Operator node: option `i` is the `i`-th candidate op kernel (by
    /// name), with the spec the node instantiates.
    Op {
        /// Candidate kernel names, in registry order.
        kernels: Vec<String>,
        /// Each candidate's own execution cost in µs — the prices the
        /// solver optimized, *excluding* any sink-boundary conversion
        /// surcharge (which belongs to the plan's `output_conversion`,
        /// exactly as conv costs come from the table rows). Decoding
        /// indexes this instead of re-pricing, so a wall-clock cost
        /// source is profiled once per candidate and the stored
        /// `cost_us` is the very sample the solver minimized.
        costs: Vec<f64>,
    },
    /// Source node: option `i` delivers the input in `Layout::ALL[i]`
    /// (always f32 — the canonical input contract).
    Source,
}

/// A built instance plus the decoding tables.
pub(crate) struct BuiltInstance {
    pub pbqp: PbqpGraph,
    pub pbqp_ids: Vec<PbqpNodeId>,
    pub options: Vec<NodeOptions>,
}

/// Caches all-pairs-shortest-path DT tables per tensor size: the transform
/// cost between two layouts depends only on the tensor dimensions flowing
/// along the edge (§3.1).
pub(crate) struct ApspCache<'a> {
    dt: &'a DtGraph,
    source: &'a dyn CostSource,
    cache: HashMap<(usize, usize, usize), DtPathTable>,
}

impl<'a> ApspCache<'a> {
    pub(crate) fn new(dt: &'a DtGraph, source: &'a dyn CostSource) -> ApspCache<'a> {
        ApspCache { dt, source, cache: HashMap::new() }
    }

    pub(crate) fn table(&mut self, dims: (usize, usize, usize)) -> &DtPathTable {
        let (dt, source) = (self.dt, self.source);
        self.cache
            .entry(dims)
            .or_insert_with(|| dt.shortest_paths(|t| source.transform_cost(t, dims)))
    }
}

/// The spec a non-conv operator node instantiates, assembled from the
/// graph's inferred shapes.
pub(crate) fn op_spec(
    graph: &DnnGraph,
    shapes: &[(usize, usize, usize)],
    node: NodeId,
) -> Option<OpSpec> {
    let inputs: Vec<_> = graph.predecessors(node).iter().map(|p| shapes[p.index()]).collect();
    OpSpec::for_layer(&graph.layer(node).kind, inputs, shapes[node.index()])
}

/// Resolves the input/output representations of every option of one node.
///
/// Conv and op options carry their descriptor's full `{R_in, P, R_out}`
/// triple — including dtype, so int8 candidates participate in the same
/// instance; source options are the f32 layouts.
pub(crate) fn option_reprs(registry: &Registry, options: &NodeOptions) -> Vec<(Repr, Repr)> {
    match options {
        NodeOptions::Conv(names) => names
            .iter()
            .map(|n| {
                let d = registry.by_name(n).expect("primitive from this registry").descriptor();
                (d.input_repr(), d.output_repr())
            })
            .collect(),
        NodeOptions::Op { kernels, .. } => kernels
            .iter()
            .map(|n| {
                let d = registry.op_by_name(n).expect("op kernel from this registry").descriptor();
                (d.input_repr(), d.output_repr())
            })
            .collect(),
        NodeOptions::Source => Layout::ALL.iter().map(|&l| (Repr::f32(l), Repr::f32(l))).collect(),
    }
}

/// Builds the PBQP instance for `graph`.
///
/// Conv nodes get their cost-table rows as cost vectors; operator nodes
/// get their kernel candidates priced by the cost source; **source**
/// nodes get the cost of converting the canonical-CHW network input into
/// each layout. Sink options that produce a quantized representation
/// additionally carry their dequantization cost in the node vector, so
/// the solver cannot pick int8 at the network boundary for free. Every
/// graph edge contributes the APSP transform-cost matrix evaluated at the
/// producer's output dimensions.
pub(crate) fn build(
    graph: &DnnGraph,
    shapes: &[(usize, usize, usize)],
    registry: &Registry,
    table: &CostTable,
    source: &dyn CostSource,
    apsp: &mut ApspCache<'_>,
) -> Result<BuiltInstance, crate::PlanError> {
    let mut pbqp = PbqpGraph::new();
    let mut pbqp_ids = Vec::with_capacity(graph.len());
    let mut options = Vec::with_capacity(graph.len());

    for node in graph.node_ids() {
        let (mut costs, opts): (Vec<f64>, NodeOptions) = if let Some(row) = table.for_node(node) {
            let costs: Vec<f64> = row.costs.iter().map(|&(_, c)| c).collect();
            let names: Vec<String> = row.costs.iter().map(|(n, _)| n.clone()).collect();
            (costs, NodeOptions::Conv(names))
        } else if matches!(graph.layer(node).kind, LayerKind::Input { .. }) {
            let t = apsp.table(shapes[node.index()]);
            let costs =
                Layout::ALL.iter().map(|&l| t.cost(Repr::f32(Layout::Chw), Repr::f32(l))).collect();
            (costs, NodeOptions::Source)
        } else {
            let spec = op_spec(graph, shapes, node).expect("non-conv, non-input node");
            let class = match graph.layer(node).kind.selection_class() {
                pbqp_dnn_graph::SelectionClass::Op(c) => c,
                _ => unreachable!("conv and input handled above"),
            };
            let cands = registry.op_candidates(class, &spec);
            if cands.is_empty() {
                // Possible with a hand-assembled partial op inventory
                // (`Registry::with_op_kernels`); a Result-returning API
                // must not panic on it.
                return Err(crate::PlanError::NoOpKernels { class });
            }
            let costs: Vec<f64> = cands.iter().map(|k| source.op_cost(k.as_ref(), &spec)).collect();
            let kernels = cands.iter().map(|k| k.descriptor().name.clone()).collect();
            (costs.clone(), NodeOptions::Op { kernels, costs })
        };

        if graph.successors(node).is_empty() {
            // Network outputs are delivered in f32: sink options that
            // produce a quantized representation carry their
            // dequantization cost in the node vector (f32 options add
            // the identity, i.e. zero).
            let reprs = option_reprs(registry, &opts);
            let t = apsp.table(shapes[node.index()]);
            for (c, (_, out)) in costs.iter_mut().zip(&reprs) {
                if out.dtype != DType::F32 {
                    *c += t.cost(*out, Repr::f32(out.layout));
                }
            }
        }
        pbqp_ids.push(pbqp.add_node(costs));
        options.push(opts);
    }

    for (from, to) in graph.edges() {
        let out_reprs = option_reprs(registry, &options[from.index()]);
        let in_reprs = option_reprs(registry, &options[to.index()]);
        let t = apsp.table(shapes[from.index()]);
        let m = CostMatrix::from_fn(out_reprs.len(), in_reprs.len(), |i, j| {
            t.cost(out_reprs[i].1, in_reprs[j].0)
        });
        pbqp.add_edge(pbqp_ids[from.index()], pbqp_ids[to.index()], m)
            .expect("nodes were just added");
    }

    Ok(BuiltInstance { pbqp, pbqp_ids, options })
}

/// Decodes a solver selection index into the concrete layout choice of a
/// source node.
pub(crate) fn source_layout(selection: usize) -> Layout {
    Layout::ALL[selection]
}

/// Helper: the node id list in insertion order (used by the optimizer for
/// decoding).
pub(crate) fn node_ids(graph: &DnnGraph) -> Vec<NodeId> {
    graph.node_ids().collect()
}
