//! PBQP instance construction (§3.2): maps a DNN graph plus cost tables
//! onto a [`PbqpGraph`].

use std::collections::HashMap;

use pbqp_dnn_cost::{CostSource, CostTable, DtGraph, DtPathTable};
use pbqp_dnn_graph::{DnnGraph, NodeId};
use pbqp_dnn_primitives::registry::Registry;
use pbqp_dnn_tensor::{Layout, Repr};
use pbqp_solver::{CostMatrix, PbqpGraph, PbqpNodeId};

/// The options behind one PBQP node.
#[derive(Debug, Clone)]
pub(crate) enum NodeOptions {
    /// Conv node: option `i` is the `i`-th candidate primitive (by name).
    Conv(Vec<String>),
    /// Dummy node: option `i` is `Layout::ALL[i]`.
    Dummy,
}

/// A built instance plus the decoding tables.
pub(crate) struct BuiltInstance {
    pub pbqp: PbqpGraph,
    pub pbqp_ids: Vec<PbqpNodeId>,
    pub options: Vec<NodeOptions>,
}

/// Caches all-pairs-shortest-path DT tables per tensor size: the transform
/// cost between two layouts depends only on the tensor dimensions flowing
/// along the edge (§3.1).
pub(crate) struct ApspCache<'a> {
    dt: &'a DtGraph,
    source: &'a dyn CostSource,
    cache: HashMap<(usize, usize, usize), DtPathTable>,
}

impl<'a> ApspCache<'a> {
    pub(crate) fn new(dt: &'a DtGraph, source: &'a dyn CostSource) -> ApspCache<'a> {
        ApspCache { dt, source, cache: HashMap::new() }
    }

    pub(crate) fn table(&mut self, dims: (usize, usize, usize)) -> &DtPathTable {
        let (dt, source) = (self.dt, self.source);
        self.cache
            .entry(dims)
            .or_insert_with(|| dt.shortest_paths(|t| source.transform_cost(t, dims)))
    }
}

/// Resolves the input/output representations of every option of one node.
///
/// Conv options carry their descriptor's full `{R_in, P, R_out}` triple —
/// including dtype, so int8 candidates participate in the same instance;
/// dummy (non-conv) layers compute in f32, so their options remain the
/// f32 layouts.
pub(crate) fn option_reprs(registry: &Registry, options: &NodeOptions) -> Vec<(Repr, Repr)> {
    match options {
        NodeOptions::Conv(names) => names
            .iter()
            .map(|n| {
                let d = registry.by_name(n).expect("primitive from this registry").descriptor();
                (d.input_repr(), d.output_repr())
            })
            .collect(),
        NodeOptions::Dummy => Layout::ALL.iter().map(|&l| (Repr::f32(l), Repr::f32(l))).collect(),
    }
}

/// Builds the PBQP instance for `graph`.
///
/// Conv nodes get their cost-table rows as cost vectors; dummy nodes get a
/// zero vector over all layouts — except **input** nodes, whose vector is
/// the cost of converting the canonical-CHW network input into each layout.
/// Every graph edge contributes the APSP transform-cost matrix evaluated at
/// the producer's output dimensions.
pub(crate) fn build(
    graph: &DnnGraph,
    shapes: &[(usize, usize, usize)],
    registry: &Registry,
    table: &CostTable,
    apsp: &mut ApspCache<'_>,
) -> BuiltInstance {
    let mut pbqp = PbqpGraph::new();
    let mut pbqp_ids = Vec::with_capacity(graph.len());
    let mut options = Vec::with_capacity(graph.len());

    for node in graph.node_ids() {
        if let Some(row) = table.for_node(node) {
            let mut costs: Vec<f64> = row.costs.iter().map(|&(_, c)| c).collect();
            let names: Vec<String> = row.costs.iter().map(|(n, _)| n.clone()).collect();
            if graph.successors(node).is_empty() {
                // Network outputs are delivered in f32: sink options that
                // produce a quantized representation carry their
                // dequantization cost in the node vector, so the solver
                // cannot pick int8 at the boundary for free (f32 options
                // add the identity, i.e. zero).
                let t = apsp.table(shapes[node.index()]);
                for (c, name) in costs.iter_mut().zip(&names) {
                    let r = registry.by_name(name).expect("profiled").descriptor().output_repr();
                    *c += t.cost(r, Repr::f32(r.layout));
                }
            }
            pbqp_ids.push(pbqp.add_node(costs));
            options.push(NodeOptions::Conv(names));
        } else {
            let is_input = graph.predecessors(node).is_empty();
            let costs: Vec<f64> = if is_input {
                let t = apsp.table(shapes[node.index()]);
                Layout::ALL.iter().map(|&l| t.cost(Repr::f32(Layout::Chw), Repr::f32(l))).collect()
            } else {
                vec![0.0; Layout::ALL.len()]
            };
            pbqp_ids.push(pbqp.add_node(costs));
            options.push(NodeOptions::Dummy);
        }
    }

    for (from, to) in graph.edges() {
        let out_reprs = option_reprs(registry, &options[from.index()]);
        let in_reprs = option_reprs(registry, &options[to.index()]);
        let t = apsp.table(shapes[from.index()]);
        let m = CostMatrix::from_fn(out_reprs.len(), in_reprs.len(), |i, j| {
            t.cost(out_reprs[i].1, in_reprs[j].0)
        });
        pbqp.add_edge(pbqp_ids[from.index()], pbqp_ids[to.index()], m)
            .expect("nodes were just added");
    }

    BuiltInstance { pbqp, pbqp_ids, options }
}

/// Decodes a solver selection index into the concrete layout choice of a
/// dummy node.
pub(crate) fn dummy_layout(selection: usize) -> Layout {
    Layout::ALL[selection]
}

/// Helper: the node id list in insertion order (used by the optimizer for
/// decoding).
pub(crate) fn node_ids(graph: &DnnGraph) -> Vec<NodeId> {
    graph.node_ids().collect()
}
