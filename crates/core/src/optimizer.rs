use std::error::Error;
use std::fmt;
use std::time::Instant;

use pbqp_dnn_cost::{CostSource, CostTable, DtGraph};
use pbqp_dnn_graph::{DnnGraph, GraphError, NodeId};
use pbqp_dnn_primitives::registry::Registry;
use pbqp_dnn_primitives::{AlgoHint, Family};
use pbqp_dnn_tensor::{DType, Layout, Repr};
use pbqp_solver::{PbqpError, Solver};

use crate::instance::{self, ApspCache, NodeOptions};
use crate::plan::{AssignmentKind, EdgeLegalization, ExecutionPlan, NodeAssignment};
use crate::Strategy;

/// Errors from planning.
#[derive(Debug)]
pub enum PlanError {
    /// The DNN graph is malformed.
    Graph(GraphError),
    /// The PBQP instance could not be solved (e.g. no legal layout chain
    /// between two mandatory primitives).
    Pbqp(PbqpError),
    /// A strategy produced representations with no connecting DT chain.
    NoLegalization {
        /// Producer representation.
        from: Repr,
        /// Consumer representation.
        to: Repr,
    },
    /// The registry's op-kernel inventory has no candidate for an
    /// operator class the graph uses (possible with a hand-assembled
    /// partial inventory via `Registry::with_op_kernels`).
    NoOpKernels {
        /// The uncovered operator class.
        class: pbqp_dnn_graph::OpClass,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Graph(e) => write!(f, "graph error: {e}"),
            PlanError::Pbqp(e) => write!(f, "solver error: {e}"),
            PlanError::NoLegalization { from, to } => {
                write!(f, "no representation transformation chain from {from} to {to}")
            }
            PlanError::NoOpKernels { class } => {
                write!(f, "registry has no op kernels for operator class `{class}`")
            }
        }
    }
}

impl Error for PlanError {}

impl From<GraphError> for PlanError {
    fn from(e: GraphError) -> Self {
        PlanError::Graph(e)
    }
}

impl From<PbqpError> for PlanError {
    fn from(e: PbqpError) -> Self {
        PlanError::Pbqp(e)
    }
}

/// The primitive-selection optimizer: owns the registry/cost-source pair
/// and produces [`ExecutionPlan`]s under any [`Strategy`].
pub struct Optimizer<'a> {
    registry: &'a Registry,
    source: &'a dyn CostSource,
    dt: DtGraph,
}

impl<'a> Optimizer<'a> {
    /// Creates an optimizer over the standard DT graph.
    pub fn new(registry: &'a Registry, source: &'a dyn CostSource) -> Optimizer<'a> {
        Optimizer { registry, source, dt: DtGraph::standard() }
    }

    /// Replaces the DT graph (used by tests and the §8 ensemble example).
    pub fn with_dt_graph(mut self, dt: DtGraph) -> Optimizer<'a> {
        self.dt = dt;
        self
    }

    /// The registry this optimizer selects from.
    pub fn registry(&self) -> &Registry {
        self.registry
    }

    /// The cost source this optimizer prices primitives with.
    pub fn source(&self) -> &dyn CostSource {
        self.source
    }

    /// The data-layout transformation graph legalization routes through.
    pub fn dt_graph(&self) -> &DtGraph {
        &self.dt
    }

    /// Profiles the cost table for `graph` under this optimizer's source.
    pub fn cost_table(&self, graph: &DnnGraph) -> CostTable {
        CostTable::profile(graph, self.registry, self.source)
    }

    /// Produces a legalized execution plan for `graph` under `strategy`.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::Graph`] for malformed graphs,
    /// [`PlanError::Pbqp`] if the instance is infeasible, and
    /// [`PlanError::NoLegalization`] if a baseline strategy pairs layouts
    /// the DT graph cannot connect.
    pub fn plan(&self, graph: &DnnGraph, strategy: Strategy) -> Result<ExecutionPlan, PlanError> {
        let shapes = graph.infer_shapes()?;
        let table = self.cost_table(graph);
        self.plan_with_table(graph, &shapes, &table, strategy)
    }

    /// Like [`Optimizer::plan`] but reusing a precomputed cost table
    /// (profiling is the expensive step with a measured source).
    pub fn plan_with_table(
        &self,
        graph: &DnnGraph,
        shapes: &[(usize, usize, usize)],
        table: &CostTable,
        strategy: Strategy,
    ) -> Result<ExecutionPlan, PlanError> {
        let mut apsp = ApspCache::new(&self.dt, self.source);
        let (assignments, optimal, stats, solve_time_us) = match strategy {
            Strategy::Pbqp | Strategy::PbqpHeuristic => {
                let built =
                    instance::build(graph, shapes, self.registry, table, self.source, &mut apsp)?;
                let solver = Solver::new().heuristic_only(strategy == Strategy::PbqpHeuristic);
                let start = Instant::now();
                let solution = solver.solve(&built.pbqp)?;
                let solve_time_us = start.elapsed().as_secs_f64() * 1e6;
                let mut assignments = Vec::with_capacity(graph.len());
                for (node, options) in instance::node_ids(graph).into_iter().zip(&built.options) {
                    let sel = solution.selection(built.pbqp_ids[node.index()]);
                    let kind = match options {
                        NodeOptions::Conv(names) => self.conv_assignment(table, node, &names[sel]),
                        // The instance already priced every candidate;
                        // indexing the stored vector keeps the assignment
                        // cost the exact sample the solver minimized (and
                        // never re-runs a wall-clock profiler at decode
                        // time).
                        NodeOptions::Op { kernels, costs, .. } => {
                            self.op_assignment(&kernels[sel], costs[sel])
                        }
                        NodeOptions::Source => {
                            AssignmentKind::Source { repr: Repr::f32(instance::source_layout(sel)) }
                        }
                    };
                    assignments.push(NodeAssignment { node, kind });
                }
                (assignments, Some(solution.optimal), Some(solution.stats), solve_time_us)
            }
            _ => (self.baseline_assignments(graph, shapes, table, strategy)?, None, None, 0.0),
        };

        self.legalize(
            graph,
            shapes,
            &mut apsp,
            assignments,
            strategy,
            optimal,
            stats,
            solve_time_us,
        )
    }

    /// Prices an existing plan's selections under `table` and this
    /// optimizer's source, ignoring the costs baked into the plan: conv
    /// selections are looked up in `table` (falling back to the baked
    /// cost for candidates the table does not carry), operator kernels
    /// are re-priced through [`CostSource::op_cost`], and every
    /// legalization hop through [`CostSource::transform_cost`].
    ///
    /// This is the autotuner's comparator: a re-solve candidate's
    /// `predicted_us` and the *serving* plan's are incomparable when they
    /// came from different cost sources (analytic µs are idealized,
    /// observed µs are wall clock), so both are re-priced on one basis
    /// before a swap is considered.
    pub fn price_plan(
        &self,
        graph: &DnnGraph,
        shapes: &[(usize, usize, usize)],
        table: &CostTable,
        plan: &ExecutionPlan,
    ) -> f64 {
        let mut node_us = 0.0;
        for a in &plan.assignments {
            match &a.kind {
                AssignmentKind::Conv { primitive, cost_us, .. } => {
                    node_us += table
                        .for_node(a.node)
                        .and_then(|row| row.cost_of(primitive))
                        .unwrap_or(*cost_us);
                }
                AssignmentKind::Op { kernel, cost_us, .. } => {
                    let priced = instance::op_spec(graph, shapes, a.node).and_then(|spec| {
                        self.registry
                            .op_by_name(kernel)
                            .map(|k| self.source.op_cost(k.as_ref(), &spec))
                    });
                    node_us += priced.unwrap_or(*cost_us);
                }
                AssignmentKind::Source { .. } => {}
            }
        }
        let mut transform_us = 0.0;
        for e in &plan.edges {
            let dims = shapes[e.from.index()];
            for hop in &e.chain {
                transform_us += self.source.transform_cost(*hop, dims);
            }
        }
        for (node, chain, _) in plan.input_conversion.iter().chain(&plan.output_conversion) {
            let dims = shapes[node.index()];
            for hop in chain {
                transform_us += self.source.transform_cost(*hop, dims);
            }
        }
        (node_us + transform_us) * plan.strategy.framework_overhead()
    }

    /// Re-plans `plan` around quarantined `(node, kernel)` pairs — the
    /// graceful-degradation path of the serving engine. Each quarantined
    /// node is routed away from the offending kernel to an f32 baseline
    /// candidate: convolutions to the universal `sum2d` reference (or,
    /// if `sum2d` itself is quarantined, the cheapest other f32
    /// primitive), operators to their class's f32 kernel in canonical
    /// CHW. The whole plan is then re-legalized, so every edge chain and
    /// input/output conversion stays consistent with the new
    /// representations — a degraded plan is a *valid* plan, just a
    /// slower one.
    ///
    /// The returned plan clears `optimal` and solver stats: it is a
    /// repair, not a solve.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] if the graph is malformed or re-legalization
    /// cannot connect the new representations (cannot happen with the
    /// standard DT graph, whose f32 hops are total).
    pub fn reroute(
        &self,
        graph: &DnnGraph,
        plan: &ExecutionPlan,
        quarantined: &[(NodeId, String)],
    ) -> Result<ExecutionPlan, PlanError> {
        let shapes = graph.infer_shapes()?;
        let table = self.cost_table(graph);
        let mut apsp = ApspCache::new(&self.dt, self.source);
        let mut assignments = plan.assignments.clone();
        for (node, kernel) in quarantined {
            let a = &mut assignments[node.index()];
            match &a.kind {
                AssignmentKind::Conv { .. } => {
                    let name = if kernel != "sum2d" {
                        Some("sum2d".to_owned())
                    } else {
                        // The reference itself is quarantined: the
                        // cheapest remaining f32 candidate, if any.
                        table.for_node(*node).and_then(|row| {
                            row.costs
                                .iter()
                                .filter(|(n, _)| {
                                    n != kernel
                                        && self.registry.by_name(n).is_some_and(|p| {
                                            p.descriptor().input_dtype == DType::F32
                                        })
                                })
                                .min_by(|x, y| x.1.total_cmp(&y.1))
                                .map(|(n, _)| n.clone())
                        })
                    };
                    // No alternative at all: keep the original
                    // assignment rather than produce no plan.
                    if let Some(name) = name {
                        a.kind = self.conv_assignment(&table, *node, &name);
                    }
                }
                AssignmentKind::Op { .. } => {
                    let class = match graph.layer(*node).kind.selection_class() {
                        pbqp_dnn_graph::SelectionClass::Op(c) => c,
                        _ => continue,
                    };
                    let Some(spec) = instance::op_spec(graph, &shapes, *node) else { continue };
                    let canonical = Repr::f32(Layout::Chw);
                    let candidates = self.registry.op_candidates(class, &spec);
                    let pick = candidates
                        .iter()
                        .find(|k| {
                            let d = k.descriptor();
                            d.name != *kernel
                                && d.input_repr() == canonical
                                && d.output_repr() == canonical
                        })
                        .or_else(|| {
                            candidates.iter().find(|k| {
                                let d = k.descriptor();
                                d.name != *kernel && d.input_repr().dtype == DType::F32
                            })
                        });
                    if let Some(k) = pick {
                        let cost = self.source.op_cost(k.as_ref(), &spec);
                        a.kind = self.op_assignment(&k.descriptor().name, cost);
                    }
                }
                AssignmentKind::Source { .. } => {}
            }
        }
        self.legalize(graph, &shapes, &mut apsp, assignments, plan.strategy, None, None, 0.0)
    }

    fn conv_assignment(&self, table: &CostTable, node: NodeId, name: &str) -> AssignmentKind {
        let row = table.for_node(node).expect("conv node has a cost row");
        let cost_us = row.cost_of(name).expect("selected primitive was profiled");
        let d = self.registry.by_name(name).expect("registry primitive").descriptor();
        AssignmentKind::Conv {
            primitive: name.to_owned(),
            input_repr: d.input_repr(),
            output_repr: d.output_repr(),
            cost_us,
        }
    }

    fn op_assignment(&self, name: &str, cost_us: f64) -> AssignmentKind {
        let d = self.registry.op_by_name(name).expect("registry op kernel").descriptor();
        AssignmentKind::Op {
            kernel: name.to_owned(),
            input_repr: d.input_repr(),
            output_repr: d.output_repr(),
            cost_us,
        }
    }

    /// Per-layer selections for the non-PBQP strategies.
    fn baseline_assignments(
        &self,
        graph: &DnnGraph,
        shapes: &[(usize, usize, usize)],
        table: &CostTable,
        strategy: Strategy,
    ) -> Result<Vec<NodeAssignment>, PlanError> {
        let order = graph.topo_order().expect("validated by infer_shapes");
        let mut kinds: Vec<Option<AssignmentKind>> = vec![None; graph.len()];
        for node in order {
            let kind = if let Some(row) = table.for_node(node) {
                // Baseline strategies model existing f32 frameworks, so
                // they never pick int8 candidates even when the registry
                // carries them; only the PBQP search sees the full
                // mixed-precision space.
                let pick = |pred: &dyn Fn(&str) -> bool| -> Option<(&str, f64)> {
                    row.costs
                        .iter()
                        .filter(|(n, _)| {
                            let d = self.registry.by_name(n).expect("profiled").descriptor();
                            d.input_dtype == DType::F32 && pred(n)
                        })
                        .min_by(|a, b| a.1.total_cmp(&b.1))
                        .map(|(n, c)| (n.as_str(), *c))
                };
                let sum2d_cost = row.cost_of("sum2d").expect("sum2d supports everything");
                let name = match strategy {
                    Strategy::Sum2d => "sum2d".to_owned(),
                    Strategy::LocalOptimalChw => {
                        let chw = |n: &str| {
                            let d = self.registry.by_name(n).unwrap().descriptor();
                            d.input_layout == Layout::Chw && d.output_layout == Layout::Chw
                        };
                        pick(&chw).map(|(n, _)| n.to_owned()).unwrap_or_else(|| "sum2d".into())
                    }
                    Strategy::FamilyBest(fam) => {
                        let of_family =
                            |n: &str| self.registry.by_name(n).unwrap().descriptor().family == fam;
                        match pick(&of_family) {
                            // §5.5: replace sum2d only when actually faster.
                            Some((n, c)) if c < sum2d_cost => n.to_owned(),
                            _ => "sum2d".into(),
                        }
                    }
                    Strategy::CaffeLike => {
                        if row.cost_of("im2col_blocked_nn").is_some() {
                            "im2col_blocked_nn".into()
                        } else {
                            "sum2d".into()
                        }
                    }
                    Strategy::VendorLike { vector_width } => {
                        let vendor = |n: &str| self.vendor_subset(n, vector_width);
                        pick(&vendor)
                            .filter(|&(_, c)| c < sum2d_cost)
                            .map(|(n, _)| n.to_owned())
                            .unwrap_or_else(|| "sum2d".into())
                    }
                    Strategy::Pbqp | Strategy::PbqpHeuristic => unreachable!("handled above"),
                };
                self.conv_assignment(table, node, &name)
            } else if matches!(graph.layer(node).kind, pbqp_dnn_graph::LayerKind::Input { .. }) {
                // Sources stay canonical under every baseline.
                AssignmentKind::Source { repr: Repr::f32(Layout::Chw) }
            } else {
                // Baseline frameworks run non-conv operators in f32, in
                // whatever layout the producer delivers (the modern
                // framework behavior the paper's dummies abstracted):
                // pick the f32 kernel of the node's class at that layout.
                let layout = graph
                    .predecessors(node)
                    .first()
                    .map(|p| kinds[p.index()].as_ref().expect("topo order").output_layout())
                    .unwrap_or(Layout::Chw);
                let spec = instance::op_spec(graph, shapes, node).expect("non-conv node");
                let class = match graph.layer(node).kind.selection_class() {
                    pbqp_dnn_graph::SelectionClass::Op(c) => c,
                    _ => unreachable!("conv and input handled above"),
                };
                let kernel = self
                    .registry
                    .op_candidates(class, &spec)
                    .into_iter()
                    .find(|k| k.descriptor().input_repr() == Repr::f32(layout))
                    .ok_or(PlanError::NoOpKernels { class })?;
                let cost = self.source.op_cost(kernel.as_ref(), &spec);
                self.op_assignment(&kernel.descriptor().name, cost)
            };
            kinds[node.index()] = Some(kind);
        }
        Ok(instance::node_ids(graph)
            .into_iter()
            .zip(kinds)
            .map(|(node, kind)| NodeAssignment { node, kind: kind.expect("all nodes visited") })
            .collect())
    }

    /// The curated subset a vendor library would ship: vectorized kernels
    /// matching the platform width, packed-GEMM im2col, 2-D Winograd.
    fn vendor_subset(&self, name: &str, vector_width: usize) -> bool {
        let d = self.registry.by_name(name).expect("registry primitive").descriptor();
        let vf = d.vector_factor as usize;
        match d.family {
            Family::Im2 => {
                matches!(d.hint, AlgoHint::Gemm { efficiency, .. } if efficiency > 0.6)
                    && d.input_layout == Layout::Chw
                    && d.output_layout == Layout::Chw
            }
            Family::Winograd => {
                matches!(d.hint, AlgoHint::Winograd { two_d: true, .. })
                    && vf == vector_width
                    && d.input_layout == Layout::Chw
            }
            Family::Direct => {
                // Channel-blocked vectorized kernels and pointwise GEMM.
                d.input_layout.channel_block() == vector_width
                    || matches!(d.hint, AlgoHint::Gemm { .. })
            }
            _ => false,
        }
    }

    /// Inserts DT chains on every edge (§3's legalization phase) and
    /// totals the predicted latency.
    #[allow(clippy::too_many_arguments)]
    fn legalize(
        &self,
        graph: &DnnGraph,
        shapes: &[(usize, usize, usize)],
        apsp: &mut ApspCache<'_>,
        assignments: Vec<NodeAssignment>,
        strategy: Strategy,
        optimal: Option<bool>,
        stats: Option<pbqp_solver::SolveStats>,
        solve_time_us: f64,
    ) -> Result<ExecutionPlan, PlanError> {
        let mut edges = Vec::new();
        for (from, to) in graph.edges() {
            let out = assignments[from.index()].kind.output_repr();
            let inp = assignments[to.index()].kind.input_repr();
            let dims = shapes[from.index()];
            let t = apsp.table(dims);
            let chain = t.path(out, inp).ok_or(PlanError::NoLegalization { from: out, to: inp })?;
            let cost_us = t.cost(out, inp);
            edges.push(EdgeLegalization { from, to, chain, cost_us });
        }

        // Network inputs arrive in canonical CHW f32; convert if the
        // input node's chosen representation differs.
        let canonical = Repr::f32(Layout::Chw);
        let mut input_conversion = Vec::new();
        for node in graph.node_ids() {
            if !graph.predecessors(node).is_empty() {
                continue;
            }
            let repr = assignments[node.index()].kind.output_repr();
            if repr != canonical {
                let dims = shapes[node.index()];
                let t = apsp.table(dims);
                let chain = t
                    .path(canonical, repr)
                    .ok_or(PlanError::NoLegalization { from: canonical, to: repr })?;
                let cost = t.cost(canonical, repr);
                input_conversion.push((node, chain, cost));
            }
        }

        // Network outputs are delivered in f32 (in the sink's layout,
        // which has always been the caller-visible contract); a sink that
        // chose a quantized representation pays its dequantization here,
        // so boundary layers cannot leave the quantized domain for free.
        let mut output_conversion = Vec::new();
        for node in graph.node_ids() {
            if !graph.successors(node).is_empty() {
                continue;
            }
            let repr = assignments[node.index()].kind.output_repr();
            if repr.dtype != pbqp_dnn_tensor::DType::F32 {
                let target = Repr::f32(repr.layout);
                let dims = shapes[node.index()];
                let t = apsp.table(dims);
                let chain = t
                    .path(repr, target)
                    .ok_or(PlanError::NoLegalization { from: repr, to: target })?;
                let cost = t.cost(repr, target);
                output_conversion.push((node, chain, cost));
            }
        }

        // Node costs cover convolutions *and* operator kernels now.
        let node_us: f64 = assignments.iter().map(|a| a.kind.cost_us()).sum();
        let transform_us: f64 = edges.iter().map(|e| e.cost_us).sum::<f64>()
            + input_conversion.iter().map(|(_, _, c)| c).sum::<f64>()
            + output_conversion.iter().map(|(_, _, c)| c).sum::<f64>();
        let predicted_us = (node_us + transform_us) * strategy.framework_overhead();

        Ok(ExecutionPlan {
            strategy,
            assignments,
            edges,
            input_conversion,
            output_conversion,
            predicted_us,
            optimal,
            solve_stats: stats,
            solve_time_us,
        })
    }
}

impl fmt::Debug for Optimizer<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Optimizer").field("primitives", &self.registry.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbqp_dnn_cost::{AnalyticCost, MachineModel};
    use pbqp_dnn_graph::models;
    use pbqp_dnn_primitives::registry::full_library;

    fn setup() -> (Registry, AnalyticCost) {
        (Registry::new(full_library()), AnalyticCost::new(MachineModel::intel_haswell_like(), 1))
    }

    #[test]
    fn pbqp_plan_is_optimal_and_beats_every_baseline_on_alexnet() {
        let (reg, cost) = setup();
        let opt = Optimizer::new(&reg, &cost);
        let net = models::alexnet();
        let pbqp = opt.plan(&net, Strategy::Pbqp).unwrap();
        assert_eq!(pbqp.optimal, Some(true));
        let mut baselines = vec![
            Strategy::Sum2d,
            Strategy::LocalOptimalChw,
            Strategy::CaffeLike,
            Strategy::VendorLike { vector_width: 8 },
            Strategy::PbqpHeuristic,
        ];
        baselines.extend(Strategy::family_bars());
        for b in baselines {
            let plan = opt.plan(&net, b).unwrap();
            assert!(
                pbqp.predicted_us <= plan.predicted_us + 1e-6,
                "{}: PBQP {:.1} vs {:.1}",
                b.label(),
                pbqp.predicted_us,
                plan.predicted_us
            );
        }
    }

    #[test]
    fn missing_op_kernels_are_a_typed_error_not_a_panic() {
        // `Registry::with_op_kernels` is public; a partial inventory that
        // misses a class the graph uses must surface through the Result,
        // for the PBQP path and for baselines alike.
        let reg = Registry::with_op_kernels(full_library(), Vec::new());
        let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
        let opt = Optimizer::new(&reg, &cost);
        let net = models::micro_alexnet();
        for strategy in [Strategy::Pbqp, Strategy::Sum2d] {
            let err = opt.plan(&net, strategy).unwrap_err();
            assert!(
                matches!(err, PlanError::NoOpKernels { .. }),
                "{}: got {err}",
                strategy.label()
            );
        }
    }

    #[test]
    fn plans_are_layout_consistent_after_legalization() {
        let (reg, cost) = setup();
        let opt = Optimizer::new(&reg, &cost);
        for (name, net) in models::evaluation_models() {
            let plan = opt.plan(&net, Strategy::Pbqp).unwrap();
            for e in &plan.edges {
                let mut cur = plan.assignment(e.from).output_repr();
                for hop in &e.chain {
                    assert_eq!(hop.from(), cur, "{name}: broken chain");
                    cur = hop.to();
                }
                assert_eq!(cur, plan.assignment(e.to).input_repr(), "{name}: edge end");
            }
        }
    }

    #[test]
    fn mixed_precision_registry_yields_a_mixed_plan_on_alexnet() {
        use pbqp_dnn_primitives::registry::mixed_precision_library;
        let reg = Registry::new(mixed_precision_library());
        // On the small-cache ARM model, int8 im2col wins the big
        // GEMM-bound layers while F(2,5) Winograd keeps conv2 in f32 —
        // a genuinely mixed selection from one solve.
        let cost = AnalyticCost::new(MachineModel::arm_a57_like(), 1);
        let opt = Optimizer::new(&reg, &cost);
        let net = models::alexnet();
        let plan = opt.plan(&net, Strategy::Pbqp).unwrap();
        assert_eq!(plan.optimal, Some(true));
        assert!(
            plan.is_mixed_precision(),
            "expected both precisions; int8 layers: {:?}\n{plan}",
            plan.int8_layers()
        );
        assert!(plan.quant_edge_count() >= 2, "int8 islands need quant/dequant edges\n{plan}");
        // One solve over the superset space can never lose to the
        // f32-only optimum.
        let f32_reg = Registry::new(pbqp_dnn_primitives::registry::full_library());
        let f32_opt = Optimizer::new(&f32_reg, &cost);
        let f32_plan = f32_opt.plan(&net, Strategy::Pbqp).unwrap();
        assert!(plan.predicted_us <= f32_plan.predicted_us + 1e-6);
        // Baselines stay f32 even with the mixed registry.
        for strategy in [Strategy::LocalOptimalChw, Strategy::VendorLike { vector_width: 8 }] {
            let base = opt.plan(&net, strategy).unwrap();
            assert!(base.int8_layers().is_empty(), "{} picked int8", strategy.label());
        }
    }

    #[test]
    fn sum2d_strategy_uses_sum2d_everywhere_with_no_transforms() {
        let (reg, cost) = setup();
        let opt = Optimizer::new(&reg, &cost);
        let net = models::alexnet();
        let plan = opt.plan(&net, Strategy::Sum2d).unwrap();
        for (_, prim) in plan.selected_primitives() {
            assert_eq!(prim, "sum2d");
        }
        assert_eq!(plan.transform_count(), 0);
        assert_eq!(plan.transform_us(), 0.0);
    }

    #[test]
    fn local_optimal_chw_never_needs_transforms() {
        let (reg, cost) = setup();
        let opt = Optimizer::new(&reg, &cost);
        let plan = opt.plan(&models::googlenet(), Strategy::LocalOptimalChw).unwrap();
        assert_eq!(plan.transform_count(), 0);
    }

    #[test]
    fn family_best_pays_transform_costs_it_ignored() {
        let (reg, cost) = setup();
        let opt = Optimizer::new(&reg, &cost);
        let net = models::googlenet();
        // At least one family strategy must insert transforms on GoogleNet
        // (the §5.8 direct-family slowdown effect).
        let any_transforms = Strategy::family_bars()
            .iter()
            .any(|&s| opt.plan(&net, s).unwrap().transform_count() > 0);
        assert!(any_transforms);
    }

    #[test]
    fn strided_conv1_never_gets_winograd() {
        let (reg, cost) = setup();
        let opt = Optimizer::new(&reg, &cost);
        let net = models::alexnet();
        let plan = opt.plan(&net, Strategy::Pbqp).unwrap();
        let conv1 = net.find("conv1").unwrap();
        if let AssignmentKind::Conv { primitive, .. } = plan.assignment(conv1) {
            let fam = reg.by_name(primitive).unwrap().descriptor().family;
            assert!(
                !matches!(fam, Family::Winograd | Family::Kn2 | Family::Fft),
                "conv1 (strided) got {primitive}"
            );
        } else {
            panic!("conv1 is a conv node");
        }
    }

    #[test]
    fn int8_sink_pays_output_dequantization() {
        use pbqp_dnn_graph::{ConvScenario, DnnGraph, Layer, LayerKind};
        use pbqp_dnn_primitives::registry::mixed_precision_library;
        use pbqp_dnn_tensor::transform::ReprTransform;
        use pbqp_dnn_tensor::DType;
        // A network ending directly in the int8-friendly conv: the sink's
        // quantized output must be dequantized back to f32 at the network
        // boundary, and the plan must carry (and price) that chain.
        let mut g = DnnGraph::new();
        let data = g.add(Layer::new("data", LayerKind::Input { c: 16, h: 20, w: 20 }));
        let conv = g.add(Layer::new(
            "conv",
            LayerKind::Conv(ConvScenario::new(16, 20, 20, 2, 5, 32).with_pad(0)),
        ));
        g.connect(data, conv).unwrap();
        let reg = Registry::new(mixed_precision_library());
        let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
        let plan = Optimizer::new(&reg, &cost).plan(&g, Strategy::Pbqp).unwrap();
        assert_eq!(plan.assignment(conv).output_repr().dtype, DType::I8, "{plan}");
        let (node, chain, dq_cost) = &plan.output_conversion[0];
        assert_eq!(*node, conv);
        assert!(chain.iter().any(|h| matches!(h, ReprTransform::Dequantize(_))));
        assert!(*dq_cost > 0.0);
        // The boundary cost participates in the prediction (conv + edges
        // + output dequant decompose exactly).
        let parts = plan.conv_us() + plan.transform_us();
        assert!((parts - plan.predicted_us).abs() < 1e-6 * plan.predicted_us);
        // All-f32 plans never carry an output conversion.
        let f32_reg = Registry::new(full_library());
        let f32_plan = Optimizer::new(&f32_reg, &cost).plan(&g, Strategy::Pbqp).unwrap();
        assert!(f32_plan.output_conversion.is_empty());
    }

    #[test]
    fn reroute_quarantines_kernels_into_valid_f32_plans() {
        use pbqp_dnn_primitives::registry::mixed_precision_library;
        let reg = Registry::new(mixed_precision_library());
        let cost = AnalyticCost::new(MachineModel::arm_a57_like(), 1);
        let opt = Optimizer::new(&reg, &cost);
        let net = models::micro_resnet();
        let plan = opt.plan(&net, Strategy::Pbqp).unwrap();
        let conv1 = net.find("conv1").unwrap();
        let relu1 = net.find("relu1").unwrap();
        let conv_kernel = match plan.assignment(conv1) {
            AssignmentKind::Conv { primitive, .. } => primitive.clone(),
            other => panic!("conv1 is a conv node, got {other:?}"),
        };
        let op_kernel = match plan.assignment(relu1) {
            AssignmentKind::Op { kernel, .. } => kernel.clone(),
            other => panic!("relu1 is an op node, got {other:?}"),
        };
        let degraded = opt
            .reroute(&net, &plan, &[(conv1, conv_kernel.clone()), (relu1, op_kernel.clone())])
            .unwrap();
        // Quarantined nodes moved off the offending kernels, onto f32.
        match degraded.assignment(conv1) {
            AssignmentKind::Conv { primitive, input_repr, .. } => {
                assert_eq!(primitive, "sum2d");
                assert_ne!(*primitive, conv_kernel);
                assert_eq!(input_repr.dtype, DType::F32);
            }
            other => panic!("conv1 stayed {other:?}"),
        }
        match degraded.assignment(relu1) {
            AssignmentKind::Op { kernel, input_repr, .. } => {
                assert_ne!(*kernel, op_kernel);
                assert_eq!(input_repr.dtype, DType::F32);
            }
            other => panic!("relu1 stayed {other:?}"),
        }
        // A repair, not a solve.
        assert_eq!(degraded.optimal, None);
        // The degraded plan is still fully legal: every edge chain
        // connects producer to consumer representation.
        for e in &degraded.edges {
            let mut cur = degraded.assignment(e.from).output_repr();
            for hop in &e.chain {
                assert_eq!(hop.from(), cur, "broken chain after reroute");
                cur = hop.to();
            }
            assert_eq!(cur, degraded.assignment(e.to).input_repr(), "edge end after reroute");
        }
        // Un-quarantined nodes keep their selections.
        for a in &plan.assignments {
            if a.node != conv1 && a.node != relu1 {
                assert_eq!(a.kind, degraded.assignment(a.node).clone(), "untouched node moved");
            }
        }
    }

    #[test]
    fn heuristic_is_never_better_than_exact() {
        let (reg, cost) = setup();
        let opt = Optimizer::new(&reg, &cost);
        for (name, net) in models::evaluation_models() {
            let exact = opt.plan(&net, Strategy::Pbqp).unwrap();
            let heur = opt.plan(&net, Strategy::PbqpHeuristic).unwrap();
            assert!(
                exact.predicted_us <= heur.predicted_us + 1e-6,
                "{name}: exact {} vs heuristic {}",
                exact.predicted_us,
                heur.predicted_us
            );
        }
    }

    #[test]
    fn googlenet_pbqp_solves_quickly_and_optimally() {
        let (reg, cost) = setup();
        let opt = Optimizer::new(&reg, &cost);
        let plan = opt.plan(&models::googlenet(), Strategy::Pbqp).unwrap();
        assert_eq!(plan.optimal, Some(true));
        // §5.4: under a second. Allow generous headroom on CI machines.
        assert!(plan.solve_time_us < 5_000_000.0, "solve took {} µs", plan.solve_time_us);
    }
}
