//! Plan caching: skip repeated PBQP solves for known requests.
//!
//! A serving system sees the same (network, strategy, cost source) triple
//! over and over — every inference request for a deployed model would
//! otherwise re-profile the cost table and re-run the solver. The
//! [`PlanCache`] memoizes legalized [`ExecutionPlan`]s behind an
//! [`Arc`], keyed by:
//!
//! * the **graph fingerprint** ([`DnnGraph::fingerprint`]) — a structural
//!   hash of every layer and edge;
//! * the **strategy key** ([`Strategy::cache_key`]);
//! * the **cost-source key** ([`CostSource::cache_key`]) — sources that
//!   are not pure functions (e.g. wall-clock profilers) report themselves
//!   uncacheable and bypass the cache entirely.
//!
//! The cache is `Sync`: concurrent planners share one instance, and a hit
//! costs a fingerprint plus a map lookup instead of a solve.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use pbqp_dnn_graph::DnnGraph;

use crate::{ExecutionPlan, Optimizer, PlanError, Strategy};

/// (graph fingerprint, optimizer-config fingerprint, strategy key,
/// cost-source key).
type Key = (u64, u64, String, String);

/// The sentinel under which [`crate::Optimizer`] cost sources declare
/// themselves non-memoizable (see `CostSource::cache_key`).
const UNCACHEABLE: &str = "uncacheable";

/// A thread-safe memo table of legalized execution plans.
///
/// # Example
///
/// ```
/// use pbqp_dnn_cost::{AnalyticCost, MachineModel};
/// use pbqp_dnn_graph::models;
/// use pbqp_dnn_primitives::registry::{full_library, Registry};
/// use pbqp_dnn_select::{Optimizer, PlanCache, Strategy};
///
/// let registry = Registry::new(full_library());
/// let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
/// let optimizer = Optimizer::new(&registry, &cost);
/// let net = models::alexnet();
///
/// let cache = PlanCache::new();
/// let first = cache.plan(&optimizer, &net, Strategy::Pbqp).unwrap();
/// let again = cache.plan(&optimizer, &net, Strategy::Pbqp).unwrap();
/// // The second request is served from the cache: same plan object.
/// assert!(std::sync::Arc::ptr_eq(&first, &again));
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// ```
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: Mutex<HashMap<Key, Arc<ExecutionPlan>>>,
    /// Plans keyed by compiled-artifact fingerprint (see
    /// [`artifact_fingerprint`]) — the front-door compiler's index, kept
    /// separate from the optimizer-keyed map so the two keying schemes
    /// can never collide.
    by_fingerprint: Mutex<HashMap<u64, Arc<ExecutionPlan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// Creates an empty cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// Returns the cached plan for (graph, strategy, cost source), or
    /// plans and inserts it on a miss.
    ///
    /// When the optimizer's cost source is uncacheable (wall-clock
    /// profilers), this degrades to a plain [`Optimizer::plan`] call and
    /// records neither a hit nor a miss.
    ///
    /// # Errors
    ///
    /// Propagates [`PlanError`] from the underlying planning call.
    pub fn plan(
        &self,
        optimizer: &Optimizer<'_>,
        graph: &DnnGraph,
        strategy: Strategy,
    ) -> Result<Arc<ExecutionPlan>, PlanError> {
        let source_key = optimizer.source().cache_key();
        if source_key == UNCACHEABLE {
            return Ok(Arc::new(optimizer.plan(graph, strategy)?));
        }
        let key = (
            graph.fingerprint(),
            optimizer_fingerprint(optimizer),
            strategy.cache_key(),
            source_key,
        );
        if let Some(plan) = self.plans.lock().expect("cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(plan));
        }
        // Plan outside the lock: solves can take milliseconds and other
        // threads may be after different keys. A racing duplicate solve is
        // harmless (both compute the same plan; last insert wins).
        self.misses.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(optimizer.plan(graph, strategy)?);
        self.plans.lock().expect("cache lock").insert(key, Arc::clone(&plan));
        Ok(plan)
    }

    /// Number of plans currently cached.
    pub fn len(&self) -> usize {
        self.plans.lock().expect("cache lock").len()
    }

    /// Whether the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Requests served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Requests that had to solve.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Drops every cached plan (e.g. after a cost-model recalibration
    /// that keeps the same cache key).
    pub fn clear(&self) {
        self.plans.lock().expect("cache lock").clear();
        self.by_fingerprint.lock().expect("cache lock").clear();
    }

    /// Returns the plan cached under a compiled-artifact `fingerprint`
    /// (see [`artifact_fingerprint`]), or solves via `solve` and inserts
    /// on a miss. This is the front-door compiler's cache entry point:
    /// recompiling the same (graph, strategy, cost source, library)
    /// quadruple skips the profile and the PBQP solve.
    ///
    /// # Errors
    ///
    /// Propagates [`PlanError`] from `solve`; errors are never cached.
    pub fn plan_by_fingerprint(
        &self,
        fingerprint: u64,
        solve: impl FnOnce() -> Result<ExecutionPlan, PlanError>,
    ) -> Result<Arc<ExecutionPlan>, PlanError> {
        if let Some(plan) = self.by_fingerprint.lock().expect("cache lock").get(&fingerprint) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(plan));
        }
        // Solve outside the lock, exactly like [`PlanCache::plan`]: a
        // racing duplicate solve is harmless and last-insert wins.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(solve()?);
        self.by_fingerprint.lock().expect("cache lock").insert(fingerprint, Arc::clone(&plan));
        Ok(plan)
    }
}

/// The stable identity of a compiled-model artifact: a 64-bit FNV-1a hash
/// over the graph's structural fingerprint, the strategy's cache key, the
/// cost source's cache key and the primitive-library key. Two compiles
/// with the same artifact fingerprint produce the same plan, so the
/// fingerprint keys both [`PlanCache::plan_by_fingerprint`] and the
/// saved artifact's header.
pub fn artifact_fingerprint(
    graph: &DnnGraph,
    strategy: Strategy,
    cost_key: &str,
    library_key: &str,
) -> u64 {
    use std::hash::Hasher;
    let mut h = pbqp_dnn_graph::Fnv1a::default();
    h.write_u64(graph.fingerprint());
    for part in [strategy.cache_key().as_str(), cost_key, library_key] {
        h.write(part.as_bytes());
        h.write_u8(0xff);
    }
    h.finish()
}

/// Fingerprint of the optimizer's registry contents and DT-graph edges:
/// two optimizers sharing a cache must not collide when they select from
/// different primitive libraries or legalize over different DT edge sets
/// (the §8 ensemble example builds exactly such pairs).
fn optimizer_fingerprint(optimizer: &Optimizer<'_>) -> u64 {
    use std::hash::Hasher;
    let mut h = pbqp_dnn_graph::Fnv1a::default();
    let mut eat = |name: &str| {
        h.write(name.as_bytes());
        h.write_u8(0xff); // separator so name concatenations cannot collide
    };
    for prim in optimizer.registry().primitives() {
        eat(&prim.descriptor().name);
    }
    for edge in optimizer.dt_graph().edges() {
        // Name alone is ambiguous across repr edges ("quantize" exists
        // per layout, and i8 permutations reuse the f32 routine names),
        // so the endpoints participate too.
        eat(&format!("{}:{}>{}", edge.name(), edge.from(), edge.to()));
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbqp_dnn_cost::{AnalyticCost, MachineModel, MeasuredCost};
    use pbqp_dnn_graph::models;
    use pbqp_dnn_primitives::registry::{full_library, Registry};

    #[test]
    fn hits_share_the_plan_and_misses_partition_by_key() {
        let reg = Registry::new(full_library());
        let intel = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
        let arm = AnalyticCost::new(MachineModel::arm_a57_like(), 1);
        let net = models::alexnet();
        let cache = PlanCache::new();

        let opt_intel = Optimizer::new(&reg, &intel);
        let a = cache.plan(&opt_intel, &net, Strategy::Pbqp).unwrap();
        let b = cache.plan(&opt_intel, &net, Strategy::Pbqp).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));

        // Different strategy, machine, or graph each miss separately.
        cache.plan(&opt_intel, &net, Strategy::Sum2d).unwrap();
        let opt_arm = Optimizer::new(&reg, &arm);
        cache.plan(&opt_arm, &net, Strategy::Pbqp).unwrap();
        cache.plan(&opt_intel, &models::googlenet(), Strategy::Pbqp).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 4));
        assert_eq!(cache.len(), 4);

        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn optimizers_with_different_dt_graphs_or_registries_do_not_collide() {
        use pbqp_dnn_cost::DtGraph;
        use pbqp_dnn_tensor::transform::DIRECT_TRANSFORMS;

        let reg = Registry::new(full_library());
        let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
        let net = models::alexnet();
        let cache = PlanCache::new();

        // The §8 ensemble pattern: same registry and cost source, but a
        // restricted DT edge set. Plans must not be shared across them.
        let full = Optimizer::new(&reg, &cost);
        let restricted = Optimizer::new(&reg, &cost).with_dt_graph(DtGraph::with_edges(
            DIRECT_TRANSFORMS.iter().copied().take(2).collect(),
        ));
        let a = cache.plan(&full, &net, Strategy::Pbqp).unwrap();
        let b = cache.plan(&restricted, &net, Strategy::Pbqp).unwrap();
        assert!(!Arc::ptr_eq(&a, &b), "restricted-DT optimizer must plan for itself");

        // A smaller registry must likewise get its own entry.
        let small = Registry::new(full_library().into_iter().take(10).collect());
        let small_opt = Optimizer::new(&small, &cost);
        let c = cache.plan(&small_opt, &net, Strategy::Sum2d).unwrap();
        let d = cache.plan(&full, &net, Strategy::Sum2d).unwrap();
        assert!(!Arc::ptr_eq(&c, &d));
        assert_eq!(cache.misses(), 4);
    }

    #[test]
    fn uncacheable_sources_bypass_the_cache() {
        let reg = Registry::new(full_library());
        // Wall-clock profiling is not a pure function: never memoized.
        let measured = MeasuredCost::new(1, 1).with_scale(8);
        let opt = Optimizer::new(&reg, &measured);
        let net = models::alexnet();
        let cache = PlanCache::new();
        let a = cache.plan(&opt, &net, Strategy::Sum2d).unwrap();
        let b = cache.plan(&opt, &net, Strategy::Sum2d).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        assert!(cache.is_empty());
    }

    #[test]
    fn strategy_cache_keys_are_unique() {
        let mut keys: Vec<String> = Strategy::family_bars()
            .into_iter()
            .chain([
                Strategy::Pbqp,
                Strategy::PbqpHeuristic,
                Strategy::Sum2d,
                Strategy::LocalOptimalChw,
                Strategy::CaffeLike,
                Strategy::VendorLike { vector_width: 8 },
                Strategy::VendorLike { vector_width: 4 },
            ])
            .map(|s| s.cache_key())
            .collect();
        keys.sort();
        let before = keys.len();
        keys.dedup();
        assert_eq!(before, keys.len());
    }
}
