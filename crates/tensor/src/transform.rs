//! Direct data-layout transformation routines.
//!
//! The paper (§3.1) models layout conversion with a *data-layout
//! transformation graph*: nodes are layouts, directed edges are the direct
//! conversion routines the library happens to provide. The edge set is
//! deliberately **incomplete** — converting between two layouts without a
//! direct routine requires a chain through intermediate layouts, found by
//! all-pairs shortest path in the cost crate.
//!
//! This module provides the direct routines themselves. A handful of hot
//! pairs (planar ↔ interleaved, planar ↔ blocked) have hand-written loops;
//! the remaining registered pairs go through the generic permutation copy.

use crate::{Layout, Tensor, TensorError};

/// A direct layout transformation: source layout, destination layout, and
/// the routine's registry name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DirectTransform {
    /// Layout consumed.
    pub from: Layout,
    /// Layout produced.
    pub to: Layout,
    /// Stable routine name, e.g. `"chw_to_hwc"`.
    pub name: &'static str,
}

/// The direct transformation routines shipped with the library.
///
/// This is the edge set of the data-layout transformation (DT) graph. It is
/// intentionally not the complete 8×7 pair set: several conversions (e.g.
/// `WCH → CHW`, `CHWc8 → HWC`) require chains, exercising the paper's
/// shortest-path machinery.
pub const DIRECT_TRANSFORMS: [DirectTransform; 18] = [
    DirectTransform { from: Layout::Chw, to: Layout::Hwc, name: "chw_to_hwc" },
    DirectTransform { from: Layout::Hwc, to: Layout::Chw, name: "hwc_to_chw" },
    DirectTransform { from: Layout::Chw, to: Layout::Hcw, name: "chw_to_hcw" },
    DirectTransform { from: Layout::Hcw, to: Layout::Chw, name: "hcw_to_chw" },
    DirectTransform { from: Layout::Hcw, to: Layout::Hwc, name: "hcw_to_hwc" },
    DirectTransform { from: Layout::Hwc, to: Layout::Hcw, name: "hwc_to_hcw" },
    DirectTransform { from: Layout::Chw, to: Layout::Cwh, name: "chw_to_cwh" },
    DirectTransform { from: Layout::Cwh, to: Layout::Chw, name: "cwh_to_chw" },
    DirectTransform { from: Layout::Hwc, to: Layout::Whc, name: "hwc_to_whc" },
    DirectTransform { from: Layout::Whc, to: Layout::Hwc, name: "whc_to_hwc" },
    DirectTransform { from: Layout::Whc, to: Layout::Wch, name: "whc_to_wch" },
    DirectTransform { from: Layout::Wch, to: Layout::Whc, name: "wch_to_whc" },
    DirectTransform { from: Layout::Cwh, to: Layout::Wch, name: "cwh_to_wch" },
    DirectTransform { from: Layout::Chw, to: Layout::Chw4, name: "pack_c4" },
    DirectTransform { from: Layout::Chw4, to: Layout::Chw, name: "unpack_c4" },
    DirectTransform { from: Layout::Chw, to: Layout::Chw8, name: "pack_c8" },
    DirectTransform { from: Layout::Chw8, to: Layout::Chw, name: "unpack_c8" },
    DirectTransform { from: Layout::Chw4, to: Layout::Chw8, name: "rebl_c4_c8" },
];

/// Whether a direct routine exists from `from` to `to`.
pub fn has_direct(from: Layout, to: Layout) -> bool {
    DIRECT_TRANSFORMS.iter().any(|t| t.from == from && t.to == to)
}

/// Applies the direct transformation routine from `t.layout()` to `to`.
///
/// Hot pairs use specialized loops that walk the destination contiguously;
/// other registered pairs use the generic permutation copy.
///
/// # Errors
///
/// Returns [`TensorError::NoDirectTransform`] when the pair is not in
/// [`DIRECT_TRANSFORMS`]; callers that need an arbitrary conversion should
/// run a chain computed from the DT graph instead.
pub fn apply_direct(t: &Tensor, to: Layout) -> Result<Tensor, TensorError> {
    let mut dst = Tensor::empty();
    apply_direct_into(t, to, &mut dst)?;
    Ok(dst)
}

/// Allocation-free form of [`apply_direct`]: writes the converted tensor
/// into `dst`, recycling its storage (see [`Tensor::reuse_as`]). The
/// steady-state serving engine keeps one `dst` per plan edge so layout
/// legalization never touches the heap after warmup.
///
/// # Errors
///
/// Returns [`TensorError::NoDirectTransform`] when the pair is not in
/// [`DIRECT_TRANSFORMS`]; `dst` is left untouched in that case.
pub fn apply_direct_into(t: &Tensor, to: Layout, dst: &mut Tensor) -> Result<(), TensorError> {
    let from = t.layout();
    if !has_direct(from, to) {
        return Err(TensorError::NoDirectTransform { from, to });
    }
    let (c, h, w) = t.dims();
    dst.reuse_as(c, h, w, to);
    if to.is_blocked() {
        // Padding lanes are not written by the copy loops; a recycled
        // buffer may hold stale values there.
        dst.data_mut().fill(0.0);
    }
    match (from, to) {
        (Layout::Chw, Layout::Hwc) => chw_to_hwc_into(t, dst),
        (Layout::Hwc, Layout::Chw) => hwc_to_chw_into(t, dst),
        (Layout::Chw, Layout::Chw4) | (Layout::Chw, Layout::Chw8) => pack_blocked_into(t, dst),
        (Layout::Chw4, Layout::Chw) | (Layout::Chw8, Layout::Chw) => unpack_blocked_into(t, dst),
        _ => copy_logical_into(t, dst),
    }
    Ok(())
}

/// Converts `t` into layout `to`, writing into recycled `dst` storage:
/// the specialized direct routine when one is registered, the generic
/// permutation copy otherwise — the allocation-free counterpart of
/// [`Tensor::to_layout`]. Same-layout conversion degenerates to a copy.
pub fn to_layout_into(t: &Tensor, to: Layout, dst: &mut Tensor) {
    if to == t.layout() {
        dst.assign_from(t);
        return;
    }
    if apply_direct_into(t, to, dst).is_ok() {
        return;
    }
    let (c, h, w) = t.dims();
    dst.reuse_as(c, h, w, to);
    if to.is_blocked() {
        dst.data_mut().fill(0.0);
    }
    copy_logical_into(t, dst);
}

/// Generic permutation copy through the logical accessors (the slow path
/// behind [`Tensor::to_layout`], writing into recycled storage).
fn copy_logical_into(t: &Tensor, dst: &mut Tensor) {
    let (c, h, w) = t.dims();
    for ci in 0..c {
        for hi in 0..h {
            for wi in 0..w {
                dst.set(ci, hi, wi, t.at(ci, hi, wi));
            }
        }
    }
}

/// Planar → interleaved with destination-contiguous inner loop.
fn chw_to_hwc_into(t: &Tensor, out: &mut Tensor) {
    let (c, h, w) = t.dims();
    debug_assert_eq!(t.layout(), Layout::Chw);
    let src = t.data();
    let dst = out.data_mut();
    for hi in 0..h {
        for wi in 0..w {
            let out_base = (hi * w + wi) * c;
            let in_base = hi * w + wi;
            for ci in 0..c {
                dst[out_base + ci] = src[ci * h * w + in_base];
            }
        }
    }
}

/// Interleaved → planar with destination-contiguous inner loop.
fn hwc_to_chw_into(t: &Tensor, out: &mut Tensor) {
    let (c, h, w) = t.dims();
    debug_assert_eq!(t.layout(), Layout::Hwc);
    let src = t.data();
    let dst = out.data_mut();
    for ci in 0..c {
        let out_plane = ci * h * w;
        for hi in 0..h {
            for wi in 0..w {
                dst[out_plane + hi * w + wi] = src[(hi * w + wi) * c + ci];
            }
        }
    }
}

/// Planar → channel-blocked (padding lanes pre-zeroed by the caller).
fn pack_blocked_into(t: &Tensor, out: &mut Tensor) {
    let (c, h, w) = t.dims();
    debug_assert_eq!(t.layout(), Layout::Chw);
    let b = out.layout().channel_block();
    let src = t.data();
    let dst = out.data_mut();
    for ci in 0..c {
        let blk = ci / b;
        let lane = ci % b;
        let in_plane = ci * h * w;
        for hi in 0..h {
            for wi in 0..w {
                dst[((blk * h + hi) * w + wi) * b + lane] = src[in_plane + hi * w + wi];
            }
        }
    }
}

/// Channel-blocked → planar (drops padding lanes).
fn unpack_blocked_into(t: &Tensor, out: &mut Tensor) {
    let (c, h, w) = t.dims();
    let b = t.layout().channel_block();
    debug_assert!(b > 1);
    let src = t.data();
    let dst = out.data_mut();
    for ci in 0..c {
        let blk = ci / b;
        let lane = ci % b;
        let out_plane = ci * h * w;
        for hi in 0..h {
            for wi in 0..w {
                dst[out_plane + hi * w + wi] = src[((blk * h + hi) * w + wi) * b + lane];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(c: usize, h: usize, w: usize, layout: Layout) -> Tensor {
        Tensor::from_fn(c, h, w, layout, |ci, hi, wi| (ci * 1000 + hi * 10 + wi) as f32)
    }

    #[test]
    fn every_registered_transform_preserves_values() {
        for t in DIRECT_TRANSFORMS {
            let src = sample(7, 5, 6, t.from);
            let dst = apply_direct(&src, t.to).unwrap();
            assert_eq!(dst.layout(), t.to, "{}", t.name);
            assert_eq!(dst.max_abs_diff(&src).unwrap(), 0.0, "{}", t.name);
        }
    }

    #[test]
    fn unregistered_pairs_are_rejected() {
        let src = sample(4, 4, 4, Layout::Wch);
        let err = apply_direct(&src, Layout::Chw).unwrap_err();
        assert_eq!(err, TensorError::NoDirectTransform { from: Layout::Wch, to: Layout::Chw });
    }

    #[test]
    fn dt_graph_is_not_complete_but_has_nontrivial_edges() {
        let pairs = DIRECT_TRANSFORMS.len();
        let complete = Layout::ALL.len() * (Layout::ALL.len() - 1);
        assert!(pairs < complete, "DT graph must be incomplete to exercise chains");
        assert!(pairs >= 16);
    }

    #[test]
    fn specialized_loops_match_generic_copy() {
        let src = sample(9, 6, 5, Layout::Chw);
        assert_eq!(
            apply_direct(&src, Layout::Hwc).unwrap().data(),
            src.to_layout(Layout::Hwc).data()
        );
        let inter = sample(9, 6, 5, Layout::Hwc);
        assert_eq!(
            apply_direct(&inter, Layout::Chw).unwrap().data(),
            inter.to_layout(Layout::Chw).data()
        );
        let blocked = apply_direct(&src, Layout::Chw8).unwrap();
        assert_eq!(blocked.data(), src.to_layout(Layout::Chw8).data());
        assert_eq!(apply_direct(&blocked, Layout::Chw).unwrap().data(), src.data());
    }

    #[test]
    fn into_variant_recycles_dirty_buffers_correctly() {
        let mut dst = Tensor::empty();
        for t in DIRECT_TRANSFORMS {
            let src = sample(5, 4, 3, t.from);
            // Poison the recycled buffer with a larger, dirty tensor.
            dst.reuse_as(9, 9, 9, Layout::Chw);
            dst.data_mut().fill(f32::NAN);
            apply_direct_into(&src, t.to, &mut dst).unwrap();
            let fresh = apply_direct(&src, t.to).unwrap();
            assert_eq!(dst.data(), fresh.data(), "{}", t.name);
            assert_eq!(dst.layout(), t.to);
        }
    }

    #[test]
    fn pack_pads_channel_tail_with_zeros() {
        let src = sample(3, 2, 2, Layout::Chw);
        let blocked = apply_direct(&src, Layout::Chw4).unwrap();
        // Lane 3 of the single block is padding.
        let data = blocked.data();
        for hi in 0..2 {
            for wi in 0..2 {
                assert_eq!(data[(hi * 2 + wi) * 4 + 3], 0.0);
            }
        }
    }
}
