//! Direct data-layout transformation routines.
//!
//! The paper (§3.1) models layout conversion with a *data-layout
//! transformation graph*: nodes are layouts, directed edges are the direct
//! conversion routines the library happens to provide. The edge set is
//! deliberately **incomplete** — converting between two layouts without a
//! direct routine requires a chain through intermediate layouts, found by
//! all-pairs shortest path in the cost crate.
//!
//! This module provides the direct routines themselves. A handful of hot
//! pairs (planar ↔ interleaved, planar ↔ blocked) have hand-written loops;
//! the remaining registered pairs go through the generic permutation copy.

use crate::{DType, Layout, QuantParams, Repr, Tensor, TensorError};

/// A direct layout transformation: source layout, destination layout, and
/// the routine's registry name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DirectTransform {
    /// Layout consumed.
    pub from: Layout,
    /// Layout produced.
    pub to: Layout,
    /// Stable routine name, e.g. `"chw_to_hwc"`.
    pub name: &'static str,
}

/// The direct transformation routines shipped with the library.
///
/// This is the edge set of the data-layout transformation (DT) graph. It is
/// intentionally not the complete 8×7 pair set: several conversions (e.g.
/// `WCH → CHW`, `CHWc8 → HWC`) require chains, exercising the paper's
/// shortest-path machinery.
pub const DIRECT_TRANSFORMS: [DirectTransform; 18] = [
    DirectTransform { from: Layout::Chw, to: Layout::Hwc, name: "chw_to_hwc" },
    DirectTransform { from: Layout::Hwc, to: Layout::Chw, name: "hwc_to_chw" },
    DirectTransform { from: Layout::Chw, to: Layout::Hcw, name: "chw_to_hcw" },
    DirectTransform { from: Layout::Hcw, to: Layout::Chw, name: "hcw_to_chw" },
    DirectTransform { from: Layout::Hcw, to: Layout::Hwc, name: "hcw_to_hwc" },
    DirectTransform { from: Layout::Hwc, to: Layout::Hcw, name: "hwc_to_hcw" },
    DirectTransform { from: Layout::Chw, to: Layout::Cwh, name: "chw_to_cwh" },
    DirectTransform { from: Layout::Cwh, to: Layout::Chw, name: "cwh_to_chw" },
    DirectTransform { from: Layout::Hwc, to: Layout::Whc, name: "hwc_to_whc" },
    DirectTransform { from: Layout::Whc, to: Layout::Hwc, name: "whc_to_hwc" },
    DirectTransform { from: Layout::Whc, to: Layout::Wch, name: "whc_to_wch" },
    DirectTransform { from: Layout::Wch, to: Layout::Whc, name: "wch_to_whc" },
    DirectTransform { from: Layout::Cwh, to: Layout::Wch, name: "cwh_to_wch" },
    DirectTransform { from: Layout::Chw, to: Layout::Chw4, name: "pack_c4" },
    DirectTransform { from: Layout::Chw4, to: Layout::Chw, name: "unpack_c4" },
    DirectTransform { from: Layout::Chw, to: Layout::Chw8, name: "pack_c8" },
    DirectTransform { from: Layout::Chw8, to: Layout::Chw, name: "unpack_c8" },
    DirectTransform { from: Layout::Chw4, to: Layout::Chw8, name: "rebl_c4_c8" },
];

/// Whether a direct routine exists from `from` to `to`.
pub fn has_direct(from: Layout, to: Layout) -> bool {
    DIRECT_TRANSFORMS.iter().any(|t| t.from == from && t.to == to)
}

/// Applies the direct transformation routine from `t.layout()` to `to`.
///
/// Hot pairs use specialized loops that walk the destination contiguously;
/// other registered pairs use the generic permutation copy.
///
/// # Errors
///
/// Returns [`TensorError::NoDirectTransform`] when the pair is not in
/// [`DIRECT_TRANSFORMS`]; callers that need an arbitrary conversion should
/// run a chain computed from the DT graph instead.
pub fn apply_direct(t: &Tensor, to: Layout) -> Result<Tensor, TensorError> {
    let mut dst = Tensor::empty();
    apply_direct_into(t, to, &mut dst)?;
    Ok(dst)
}

/// Allocation-free form of [`apply_direct`]: writes the converted tensor
/// into `dst`, recycling its storage (see [`Tensor::reuse_as`]). The
/// steady-state serving engine keeps one `dst` per plan edge so layout
/// legalization never touches the heap after warmup.
///
/// # Errors
///
/// Returns [`TensorError::NoDirectTransform`] when the pair is not in
/// [`DIRECT_TRANSFORMS`]; `dst` is left untouched in that case.
pub fn apply_direct_into(t: &Tensor, to: Layout, dst: &mut Tensor) -> Result<(), TensorError> {
    let from = t.layout();
    if !has_direct(from, to) {
        return Err(TensorError::NoDirectTransform { from, to });
    }
    let (c, h, w) = t.dims();
    dst.reuse_as(c, h, w, to);
    if to.is_blocked() {
        // Padding lanes are not written by the copy loops; a recycled
        // buffer may hold stale values there.
        dst.data_mut().fill(0.0);
    }
    match (from, to) {
        (Layout::Chw, Layout::Hwc) => chw_to_hwc_into(t, dst),
        (Layout::Hwc, Layout::Chw) => hwc_to_chw_into(t, dst),
        (Layout::Chw, Layout::Chw4) | (Layout::Chw, Layout::Chw8) => pack_blocked_into(t, dst),
        (Layout::Chw4, Layout::Chw) | (Layout::Chw8, Layout::Chw) => unpack_blocked_into(t, dst),
        _ => copy_logical_into(t, dst),
    }
    Ok(())
}

/// Converts `t` into layout `to`, writing into recycled `dst` storage:
/// the specialized direct routine when one is registered, the generic
/// permutation copy otherwise — the allocation-free counterpart of
/// [`Tensor::to_layout`]. Same-layout conversion degenerates to a copy.
pub fn to_layout_into(t: &Tensor, to: Layout, dst: &mut Tensor) {
    if to == t.layout() {
        dst.assign_from(t);
        return;
    }
    if apply_direct_into(t, to, dst).is_ok() {
        return;
    }
    let (c, h, w) = t.dims();
    dst.reuse_as(c, h, w, to);
    if to.is_blocked() {
        dst.data_mut().fill(0.0);
    }
    copy_logical_into(t, dst);
}

// ---------------------------------------------------------------------
// Representation transforms: the precision-extended DT edge set.
// ---------------------------------------------------------------------

/// One edge of the precision-extended data-transformation graph: a
/// conversion between two [`Repr`]s (layout × dtype).
///
/// The f32 layout edges wrap the classic [`DirectTransform`] routines;
/// the quantized subgraph adds per-layout quantize/dequantize edges plus
/// i8 layout permutations, so a PBQP solve can route activations through
/// int8 exactly the way it routes them through alternative layouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReprTransform {
    /// An f32 layout conversion (one of [`DIRECT_TRANSFORMS`]).
    Layout(DirectTransform),
    /// The same permutation applied to `i8` storage (quantization
    /// parameters carry through unchanged).
    LayoutI8(DirectTransform),
    /// Dynamic affine quantization `f32 → i8` at a fixed layout.
    Quantize(Layout),
    /// Dequantization `i8 → f32` at a fixed layout.
    Dequantize(Layout),
}

impl ReprTransform {
    /// Representation consumed.
    pub fn from(&self) -> Repr {
        match self {
            ReprTransform::Layout(t) => Repr::f32(t.from),
            ReprTransform::LayoutI8(t) => Repr { layout: t.from, dtype: DType::I8 },
            ReprTransform::Quantize(l) => Repr::f32(*l),
            ReprTransform::Dequantize(l) => Repr { layout: *l, dtype: DType::I8 },
        }
    }

    /// Representation produced.
    pub fn to(&self) -> Repr {
        match self {
            ReprTransform::Layout(t) => Repr::f32(t.to),
            ReprTransform::LayoutI8(t) => Repr { layout: t.to, dtype: DType::I8 },
            ReprTransform::Quantize(l) => Repr { layout: *l, dtype: DType::I8 },
            ReprTransform::Dequantize(l) => Repr::f32(*l),
        }
    }

    /// Stable routine name for cost tables and diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            ReprTransform::Layout(t) | ReprTransform::LayoutI8(t) => t.name,
            ReprTransform::Quantize(_) => "quantize",
            ReprTransform::Dequantize(_) => "dequantize",
        }
    }
}

/// The full edge set of the precision-extended transformation graph:
/// every f32 direct routine, quantize/dequantize at each layout of
/// [`Repr::I8_LAYOUTS`], and the i8 planar↔interleaved permutations.
pub fn repr_transforms() -> Vec<ReprTransform> {
    let mut edges: Vec<ReprTransform> =
        DIRECT_TRANSFORMS.iter().copied().map(ReprTransform::Layout).collect();
    for layout in Repr::I8_LAYOUTS {
        edges.push(ReprTransform::Quantize(layout));
        edges.push(ReprTransform::Dequantize(layout));
    }
    for t in DIRECT_TRANSFORMS {
        if Repr::I8_LAYOUTS.contains(&t.from) && Repr::I8_LAYOUTS.contains(&t.to) {
            edges.push(ReprTransform::LayoutI8(t));
        }
    }
    edges
}

/// Applies one representation transform into recycled `dst` storage —
/// the allocation-free dispatch point the runtime's legalization chains
/// go through.
///
/// Quantize edges compute per-tensor dynamic [`QuantParams`] from the
/// source (see [`quantize_dynamic_into`]); dequantize and i8 layout edges
/// honour the source's parameters.
///
/// # Errors
///
/// Returns [`TensorError::DTypeMismatch`] when the source dtype disagrees
/// with the edge, [`TensorError::NoDirectTransform`] when the source
/// layout does (the edge does not start at this tensor's representation)
/// or for unregistered layout pairs.
pub fn apply_repr_into(t: &Tensor, tr: ReprTransform, dst: &mut Tensor) -> Result<(), TensorError> {
    let from = tr.from();
    if t.dtype() != from.dtype {
        return Err(TensorError::DTypeMismatch { expected: from.dtype, found: t.dtype() });
    }
    if t.layout() != from.layout {
        // Applying an edge to a tensor it does not start at would produce
        // a result whose repr disagrees with `tr.to()` — callers size
        // staging buffers from the edge label, so reject loudly.
        return Err(TensorError::NoDirectTransform { from: t.layout(), to: tr.to().layout });
    }
    match tr {
        ReprTransform::Layout(hop) => apply_direct_into(t, hop.to, dst),
        ReprTransform::LayoutI8(hop) => {
            if !has_direct(t.layout(), hop.to) {
                return Err(TensorError::NoDirectTransform { from: t.layout(), to: hop.to });
            }
            let (c, h, w) = t.dims();
            dst.reuse_as_dtype(c, h, w, hop.to, DType::I8);
            dst.set_qparams(t.qparams());
            copy_logical_i8_into(t, dst);
            Ok(())
        }
        ReprTransform::Quantize(_) => {
            quantize_dynamic_into(t, dst);
            Ok(())
        }
        ReprTransform::Dequantize(_) => {
            dequantize_into(t, dst);
            Ok(())
        }
    }
}

/// Quantizes an `f32` tensor into recycled `i8` storage under explicit
/// parameters, preserving dims and layout — a layout-style transform in
/// the sense of §3.1, but along the precision axis.
///
/// # Panics
///
/// Panics if `t` is not `f32`.
pub fn quantize_into(t: &Tensor, params: QuantParams, dst: &mut Tensor) {
    let (c, h, w) = t.dims();
    dst.reuse_as_dtype(c, h, w, t.layout(), DType::I8);
    dst.set_qparams(params);
    let src = t.data();
    for (d, &v) in dst.data_i8_mut().iter_mut().zip(src) {
        *d = params.quantize(v);
    }
}

/// [`quantize_into`] with per-tensor dynamic range calibration: scans the
/// source once for its min/max, derives [`QuantParams`] (real zero always
/// exactly representable) and quantizes. Returns the parameters, which are
/// also stored on `dst`.
///
/// Deterministic — the same tensor always produces the same parameters —
/// and allocation-free once `dst`'s storage has settled.
///
/// # Panics
///
/// Panics if `t` is not `f32`.
pub fn quantize_dynamic_into(t: &Tensor, dst: &mut Tensor) -> QuantParams {
    let src = t.data();
    let mut lo = 0.0f32;
    let mut hi = 0.0f32;
    for &v in src {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let params = QuantParams::from_range(lo, hi);
    quantize_into(t, params, dst);
    params
}

/// Dequantizes an `i8` tensor into recycled `f32` storage, preserving
/// dims and layout.
///
/// # Panics
///
/// Panics if `t` is not `i8`.
pub fn dequantize_into(t: &Tensor, dst: &mut Tensor) {
    let (c, h, w) = t.dims();
    let params = t.qparams();
    let src = t.data_i8();
    dst.reuse_as_dtype(c, h, w, t.layout(), DType::F32);
    for (d, &q) in dst.data_mut().iter_mut().zip(src) {
        *d = params.dequantize(q);
    }
}

/// Generic i8 permutation copy through raw offsets (both layouts in
/// [`Repr::I8_LAYOUTS`], so no blocked padding is involved).
fn copy_logical_i8_into(t: &Tensor, dst: &mut Tensor) {
    let (c, h, w) = t.dims();
    let src = t.data_i8();
    let src_layout = t.layout();
    let dst_layout = dst.layout();
    let data = dst.data_i8_mut();
    for ci in 0..c {
        for hi in 0..h {
            for wi in 0..w {
                data[dst_layout.offset((c, h, w), ci, hi, wi)] =
                    src[src_layout.offset((c, h, w), ci, hi, wi)];
            }
        }
    }
}

/// Generic permutation copy through the logical accessors (the slow path
/// behind [`Tensor::to_layout`], writing into recycled storage).
fn copy_logical_into(t: &Tensor, dst: &mut Tensor) {
    let (c, h, w) = t.dims();
    for ci in 0..c {
        for hi in 0..h {
            for wi in 0..w {
                dst.set(ci, hi, wi, t.at(ci, hi, wi));
            }
        }
    }
}

/// Planar → interleaved with destination-contiguous inner loop.
fn chw_to_hwc_into(t: &Tensor, out: &mut Tensor) {
    let (c, h, w) = t.dims();
    debug_assert_eq!(t.layout(), Layout::Chw);
    let src = t.data();
    let dst = out.data_mut();
    for hi in 0..h {
        for wi in 0..w {
            let out_base = (hi * w + wi) * c;
            let in_base = hi * w + wi;
            for ci in 0..c {
                dst[out_base + ci] = src[ci * h * w + in_base];
            }
        }
    }
}

/// Interleaved → planar with destination-contiguous inner loop.
fn hwc_to_chw_into(t: &Tensor, out: &mut Tensor) {
    let (c, h, w) = t.dims();
    debug_assert_eq!(t.layout(), Layout::Hwc);
    let src = t.data();
    let dst = out.data_mut();
    for ci in 0..c {
        let out_plane = ci * h * w;
        for hi in 0..h {
            for wi in 0..w {
                dst[out_plane + hi * w + wi] = src[(hi * w + wi) * c + ci];
            }
        }
    }
}

/// Planar → channel-blocked (padding lanes pre-zeroed by the caller).
fn pack_blocked_into(t: &Tensor, out: &mut Tensor) {
    let (c, h, w) = t.dims();
    debug_assert_eq!(t.layout(), Layout::Chw);
    let b = out.layout().channel_block();
    let src = t.data();
    let dst = out.data_mut();
    for ci in 0..c {
        let blk = ci / b;
        let lane = ci % b;
        let in_plane = ci * h * w;
        for hi in 0..h {
            for wi in 0..w {
                dst[((blk * h + hi) * w + wi) * b + lane] = src[in_plane + hi * w + wi];
            }
        }
    }
}

/// Channel-blocked → planar (drops padding lanes).
fn unpack_blocked_into(t: &Tensor, out: &mut Tensor) {
    let (c, h, w) = t.dims();
    let b = t.layout().channel_block();
    debug_assert!(b > 1);
    let src = t.data();
    let dst = out.data_mut();
    for ci in 0..c {
        let blk = ci / b;
        let lane = ci % b;
        let out_plane = ci * h * w;
        for hi in 0..h {
            for wi in 0..w {
                dst[out_plane + hi * w + wi] = src[((blk * h + hi) * w + wi) * b + lane];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(c: usize, h: usize, w: usize, layout: Layout) -> Tensor {
        Tensor::from_fn(c, h, w, layout, |ci, hi, wi| (ci * 1000 + hi * 10 + wi) as f32)
    }

    #[test]
    fn every_registered_transform_preserves_values() {
        for t in DIRECT_TRANSFORMS {
            let src = sample(7, 5, 6, t.from);
            let dst = apply_direct(&src, t.to).unwrap();
            assert_eq!(dst.layout(), t.to, "{}", t.name);
            assert_eq!(dst.max_abs_diff(&src).unwrap(), 0.0, "{}", t.name);
        }
    }

    #[test]
    fn unregistered_pairs_are_rejected() {
        let src = sample(4, 4, 4, Layout::Wch);
        let err = apply_direct(&src, Layout::Chw).unwrap_err();
        assert_eq!(err, TensorError::NoDirectTransform { from: Layout::Wch, to: Layout::Chw });
    }

    #[test]
    fn dt_graph_is_not_complete_but_has_nontrivial_edges() {
        let pairs = DIRECT_TRANSFORMS.len();
        let complete = Layout::ALL.len() * (Layout::ALL.len() - 1);
        assert!(pairs < complete, "DT graph must be incomplete to exercise chains");
        assert!(pairs >= 16);
    }

    #[test]
    fn specialized_loops_match_generic_copy() {
        let src = sample(9, 6, 5, Layout::Chw);
        assert_eq!(
            apply_direct(&src, Layout::Hwc).unwrap().data(),
            src.to_layout(Layout::Hwc).data()
        );
        let inter = sample(9, 6, 5, Layout::Hwc);
        assert_eq!(
            apply_direct(&inter, Layout::Chw).unwrap().data(),
            inter.to_layout(Layout::Chw).data()
        );
        let blocked = apply_direct(&src, Layout::Chw8).unwrap();
        assert_eq!(blocked.data(), src.to_layout(Layout::Chw8).data());
        assert_eq!(apply_direct(&blocked, Layout::Chw).unwrap().data(), src.data());
    }

    #[test]
    fn into_variant_recycles_dirty_buffers_correctly() {
        let mut dst = Tensor::empty();
        for t in DIRECT_TRANSFORMS {
            let src = sample(5, 4, 3, t.from);
            // Poison the recycled buffer with a larger, dirty tensor.
            dst.reuse_as(9, 9, 9, Layout::Chw);
            dst.data_mut().fill(f32::NAN);
            apply_direct_into(&src, t.to, &mut dst).unwrap();
            let fresh = apply_direct(&src, t.to).unwrap();
            assert_eq!(dst.data(), fresh.data(), "{}", t.name);
            assert_eq!(dst.layout(), t.to);
        }
    }

    #[test]
    fn repr_edge_set_extends_the_layout_graph() {
        let edges = repr_transforms();
        assert_eq!(edges.len(), DIRECT_TRANSFORMS.len() + 2 * Repr::I8_LAYOUTS.len() + 2);
        // Each quantized layout has a quantize and a dequantize edge.
        for layout in Repr::I8_LAYOUTS {
            assert!(edges.iter().any(|e| matches!(e, ReprTransform::Quantize(l) if *l == layout)));
            assert!(edges
                .iter()
                .any(|e| matches!(e, ReprTransform::Dequantize(l) if *l == layout)));
        }
        // Edge endpoints are always inside the selection space.
        for e in &edges {
            let _ = e.from().index();
            let _ = e.to().index();
        }
    }

    #[test]
    fn quantize_dequantize_round_trip_is_bounded_and_exact_on_grid() {
        let src = Tensor::random(5, 7, 6, Layout::Chw, 77);
        let mut q = Tensor::empty_dtype(crate::DType::I8);
        let params = quantize_dynamic_into(&src, &mut q);
        assert_eq!(q.repr(), Repr::i8(Layout::Chw));
        let mut back = Tensor::empty();
        dequantize_into(&q, &mut back);
        let diff = back.max_abs_diff(&src).unwrap();
        assert!(diff <= params.scale / 2.0 + 1e-6, "diff {diff} vs scale {}", params.scale);
        // Values already on the grid survive a second round trip exactly.
        let mut q2 = Tensor::empty_dtype(crate::DType::I8);
        quantize_into(&back, params, &mut q2);
        assert_eq!(q.data_i8(), q2.data_i8());
    }

    #[test]
    fn apply_repr_into_covers_every_edge() {
        let mut staged = Tensor::empty();
        for e in repr_transforms() {
            let src_f32 = sample(4, 5, 3, e.from().layout);
            let src = if e.from().dtype == crate::DType::I8 {
                let mut q = Tensor::empty_dtype(crate::DType::I8);
                quantize_dynamic_into(&src_f32, &mut q);
                q
            } else {
                src_f32.clone()
            };
            let mut dst = Tensor::empty();
            apply_repr_into(&src, e, &mut dst).unwrap();
            assert_eq!(dst.repr(), e.to(), "{}", e.name());
            // Logical values survive within quantization error.
            let worst = dst.max_abs_diff(&src).unwrap();
            let tol = match e {
                ReprTransform::Layout(_)
                | ReprTransform::LayoutI8(_)
                | ReprTransform::Dequantize(_) => 1e-6,
                ReprTransform::Quantize(_) => dst.qparams().scale / 2.0 + 1e-6,
            };
            assert!(worst <= tol, "{}: {worst} > {tol}", e.name());
            let _ = &mut staged;
        }
    }

    #[test]
    fn apply_repr_into_rejects_wrong_dtype_and_wrong_layout() {
        let f = sample(2, 2, 2, Layout::Chw);
        let mut dst = Tensor::empty();
        let err =
            apply_repr_into(&f, ReprTransform::Dequantize(Layout::Chw), &mut dst).unwrap_err();
        assert!(matches!(err, TensorError::DTypeMismatch { .. }));
        // A quantize edge anchored at a different layout must not run at
        // the tensor's actual layout and mislabel the result.
        let hwc = sample(2, 2, 2, Layout::Hwc);
        let err =
            apply_repr_into(&hwc, ReprTransform::Quantize(Layout::Chw), &mut dst).unwrap_err();
        assert!(matches!(err, TensorError::NoDirectTransform { .. }));
    }

    #[test]
    fn pack_pads_channel_tail_with_zeros() {
        let src = sample(3, 2, 2, Layout::Chw);
        let blocked = apply_direct(&src, Layout::Chw4).unwrap();
        // Lane 3 of the single block is padding.
        let data = blocked.data();
        for hi in 0..2 {
            for wi in 0..2 {
                assert_eq!(data[(hi * 2 + wi) * 4 + 3], 0.0);
            }
        }
    }
}
