//! Stable little-endian wire encoding for compiled-model artifacts.
//!
//! The front-door API ships PBQP solutions between machines as bytes
//! ("solve on the build host, serve on the edge"), so every type that
//! appears in an [`crate::Repr`]-aware execution plan needs an encoding
//! that is **stable across builds and platforms** — unlike `std`'s
//! `Hash`/`DefaultHasher`, which explicitly is not. This module provides
//! the primitive writers/readers (fixed-width little-endian integers,
//! IEEE-754 bit patterns, length-prefixed strings and slices) plus codecs
//! for the tensor-level vocabulary: [`Layout`], [`DType`], [`Repr`],
//! [`QuantParams`] and [`ReprTransform`].
//!
//! Higher layers (graph, plan, weights) build their own section encoders
//! on top of these primitives; the container format, versioning and
//! fingerprint validation live in the facade crate's artifact module.
//!
//! # Example
//!
//! ```
//! use pbqp_dnn_tensor::wire::{self, WireReader};
//! use pbqp_dnn_tensor::{Layout, Repr};
//!
//! let mut buf = Vec::new();
//! wire::put_repr(&mut buf, Repr::i8(Layout::Hwc));
//! wire::put_str(&mut buf, "qint8_im2col_chw");
//!
//! let mut r = WireReader::new(&buf);
//! assert_eq!(wire::get_repr(&mut r).unwrap(), Repr::i8(Layout::Hwc));
//! assert_eq!(r.str().unwrap(), "qint8_im2col_chw");
//! assert!(r.is_empty());
//! ```

use std::error::Error;
use std::fmt;

use crate::transform::{DirectTransform, ReprTransform, DIRECT_TRANSFORMS};
use crate::{DType, Layout, QuantParams, Repr};

/// Errors raised while decoding a wire stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The stream ended before the value being decoded was complete.
    Truncated,
    /// The bytes decoded to something outside the valid vocabulary
    /// (unknown tag, out-of-range index, unregistered transform pair…).
    Corrupt(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => f.write_str("wire stream truncated"),
            WireError::Corrupt(what) => write!(f, "corrupt wire stream: {what}"),
        }
    }
}

impl Error for WireError {}

// ---------------------------------------------------------------------
// Primitive writers.
// ---------------------------------------------------------------------

/// Appends one byte.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `usize` as a little-endian `u64` (sizes are
/// platform-independent on the wire).
pub fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

/// Appends an `f32` as its IEEE-754 bit pattern.
pub fn put_f32(out: &mut Vec<u8>, v: f32) {
    put_u32(out, v.to_bits());
}

/// Appends an `f64` as its IEEE-754 bit pattern.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Appends a little-endian `i32`.
pub fn put_i32(out: &mut Vec<u8>, v: i32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_usize(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

/// Appends a length-prefixed `f32` slice.
pub fn put_f32s(out: &mut Vec<u8>, vs: &[f32]) {
    put_usize(out, vs.len());
    for &v in vs {
        put_f32(out, v);
    }
}

/// Appends a length-prefixed `i8` slice.
pub fn put_i8s(out: &mut Vec<u8>, vs: &[i8]) {
    put_usize(out, vs.len());
    out.extend(vs.iter().map(|&v| v as u8));
}

/// Appends a length-prefixed `i32` slice.
pub fn put_i32s(out: &mut Vec<u8>, vs: &[i32]) {
    put_usize(out, vs.len());
    for &v in vs {
        put_i32(out, v);
    }
}

// ---------------------------------------------------------------------
// Reader.
// ---------------------------------------------------------------------

/// A cursor over an encoded byte slice; every accessor consumes from the
/// front and fails with [`WireError::Truncated`] past the end.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
}

impl<'a> WireReader<'a> {
    /// Wraps a byte slice for decoding.
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf }
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Consumes `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::Truncated);
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    /// Decodes one byte.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of stream.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Decodes a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of stream.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Decodes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of stream.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Decodes a `usize` written by [`put_usize`].
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of stream; [`WireError::Corrupt`]
    /// when the value does not fit the platform's `usize`.
    pub fn usize(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.u64()?)
            .map_err(|_| WireError::Corrupt("size exceeds platform usize".into()))
    }

    /// Decodes a length written by [`put_usize`] that prefixes `elem_bytes`
    /// wide elements, verifying the stream can actually hold that many —
    /// so corrupt length fields fail cleanly instead of attempting huge
    /// allocations.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] when the remaining stream is shorter than
    /// the declared payload.
    pub fn len_prefix(&mut self, elem_bytes: usize) -> Result<usize, WireError> {
        let n = self.usize()?;
        if n.checked_mul(elem_bytes).is_none_or(|bytes| bytes > self.remaining()) {
            return Err(WireError::Truncated);
        }
        Ok(n)
    }

    /// Decodes an `f32` bit pattern.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of stream.
    pub fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Decodes an `f64` bit pattern.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of stream.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Decodes a little-endian `i32`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of stream.
    pub fn i32(&mut self) -> Result<i32, WireError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Decodes a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of stream, [`WireError::Corrupt`]
    /// on invalid UTF-8.
    pub fn str(&mut self) -> Result<String, WireError> {
        let n = self.len_prefix(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Corrupt("string is not UTF-8".into()))
    }

    /// Decodes a length-prefixed `f32` slice (bulk path: weight payloads
    /// dominate artifact size, so this converts 4-byte chunks directly
    /// instead of going through per-element reads).
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of stream.
    pub fn f32s(&mut self) -> Result<Vec<f32>, WireError> {
        let n = self.len_prefix(4)?;
        let bytes = self.take(n * 4)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().expect("4 bytes"))))
            .collect())
    }

    /// Decodes a length-prefixed `i8` slice.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of stream.
    pub fn i8s(&mut self) -> Result<Vec<i8>, WireError> {
        let n = self.len_prefix(1)?;
        Ok(self.take(n)?.iter().map(|&b| b as i8).collect())
    }

    /// Decodes a length-prefixed `i32` slice.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of stream.
    pub fn i32s(&mut self) -> Result<Vec<i32>, WireError> {
        let n = self.len_prefix(4)?;
        let bytes = self.take(n * 4)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }
}

// ---------------------------------------------------------------------
// Tensor-vocabulary codecs.
// ---------------------------------------------------------------------

/// Encodes a [`Layout`] as its stable index in [`Layout::ALL`].
pub fn put_layout(out: &mut Vec<u8>, layout: Layout) {
    let code = Layout::ALL.iter().position(|&l| l == layout).expect("layout in ALL");
    put_u8(out, code as u8);
}

/// Decodes a [`Layout`] written by [`put_layout`].
///
/// # Errors
///
/// [`WireError::Corrupt`] on an out-of-range code.
pub fn get_layout(r: &mut WireReader<'_>) -> Result<Layout, WireError> {
    let code = r.u8()? as usize;
    Layout::ALL
        .get(code)
        .copied()
        .ok_or_else(|| WireError::Corrupt(format!("layout code {code} out of range")))
}

/// Encodes a [`DType`] (`F32 = 0`, `I8 = 1`, `I32 = 2`).
pub fn put_dtype(out: &mut Vec<u8>, dtype: DType) {
    put_u8(
        out,
        match dtype {
            DType::F32 => 0,
            DType::I8 => 1,
            DType::I32 => 2,
        },
    );
}

/// Decodes a [`DType`] written by [`put_dtype`].
///
/// # Errors
///
/// [`WireError::Corrupt`] on an unknown code.
pub fn get_dtype(r: &mut WireReader<'_>) -> Result<DType, WireError> {
    match r.u8()? {
        0 => Ok(DType::F32),
        1 => Ok(DType::I8),
        2 => Ok(DType::I32),
        code => Err(WireError::Corrupt(format!("dtype code {code} out of range"))),
    }
}

/// Encodes a [`Repr`] as its stable index in [`Repr::ALL`].
pub fn put_repr(out: &mut Vec<u8>, repr: Repr) {
    put_u8(out, repr.index() as u8);
}

/// Decodes a [`Repr`] written by [`put_repr`].
///
/// # Errors
///
/// [`WireError::Corrupt`] on an out-of-range code.
pub fn get_repr(r: &mut WireReader<'_>) -> Result<Repr, WireError> {
    let code = r.u8()? as usize;
    Repr::ALL
        .get(code)
        .copied()
        .ok_or_else(|| WireError::Corrupt(format!("repr code {code} out of range")))
}

/// Encodes [`QuantParams`] (scale bit pattern + zero point).
pub fn put_qparams(out: &mut Vec<u8>, p: QuantParams) {
    put_f32(out, p.scale);
    put_i32(out, p.zero_point);
}

/// Decodes [`QuantParams`] written by [`put_qparams`].
///
/// # Errors
///
/// [`WireError::Truncated`] at end of stream.
pub fn get_qparams(r: &mut WireReader<'_>) -> Result<QuantParams, WireError> {
    Ok(QuantParams { scale: r.f32()?, zero_point: r.i32()? })
}

/// Encodes one [`ReprTransform`] edge: a variant tag plus its layout
/// endpoints. Layout edges resolve back through [`DIRECT_TRANSFORMS`], so
/// only registered routines can round-trip.
pub fn put_repr_transform(out: &mut Vec<u8>, tr: ReprTransform) {
    match tr {
        ReprTransform::Layout(t) => {
            put_u8(out, 0);
            put_layout(out, t.from);
            put_layout(out, t.to);
        }
        ReprTransform::LayoutI8(t) => {
            put_u8(out, 1);
            put_layout(out, t.from);
            put_layout(out, t.to);
        }
        ReprTransform::Quantize(l) => {
            put_u8(out, 2);
            put_layout(out, l);
        }
        ReprTransform::Dequantize(l) => {
            put_u8(out, 3);
            put_layout(out, l);
        }
    }
}

fn direct_transform(from: Layout, to: Layout) -> Result<DirectTransform, WireError> {
    DIRECT_TRANSFORMS
        .iter()
        .find(|t| t.from == from && t.to == to)
        .copied()
        .ok_or_else(|| WireError::Corrupt(format!("no direct transform {from} -> {to}")))
}

/// Decodes a [`ReprTransform`] written by [`put_repr_transform`].
///
/// # Errors
///
/// [`WireError::Corrupt`] on unknown tags or unregistered layout pairs.
pub fn get_repr_transform(r: &mut WireReader<'_>) -> Result<ReprTransform, WireError> {
    match r.u8()? {
        0 => Ok(ReprTransform::Layout(direct_transform(get_layout(r)?, get_layout(r)?)?)),
        1 => Ok(ReprTransform::LayoutI8(direct_transform(get_layout(r)?, get_layout(r)?)?)),
        2 => Ok(ReprTransform::Quantize(get_layout(r)?)),
        3 => Ok(ReprTransform::Dequantize(get_layout(r)?)),
        tag => Err(WireError::Corrupt(format!("repr-transform tag {tag} out of range"))),
    }
}

/// Encodes a legalization chain (length-prefixed [`ReprTransform`] run).
pub fn put_chain(out: &mut Vec<u8>, chain: &[ReprTransform]) {
    put_usize(out, chain.len());
    for &hop in chain {
        put_repr_transform(out, hop);
    }
}

/// Decodes a chain written by [`put_chain`].
///
/// # Errors
///
/// Propagates element decode errors.
pub fn get_chain(r: &mut WireReader<'_>) -> Result<Vec<ReprTransform>, WireError> {
    let n = r.len_prefix(2)?;
    (0..n).map(|_| get_repr_transform(r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::repr_transforms;

    #[test]
    fn primitive_values_round_trip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 3);
        put_usize(&mut buf, 123_456);
        put_f32(&mut buf, -1.5);
        put_f64(&mut buf, std::f64::consts::PI);
        put_i32(&mut buf, -42);
        put_str(&mut buf, "héllo");
        put_f32s(&mut buf, &[0.0, -0.0, f32::INFINITY]);
        put_i8s(&mut buf, &[-127, 0, 127]);
        put_i32s(&mut buf, &[i32::MIN, 9]);

        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.usize().unwrap(), 123_456);
        assert_eq!(r.f32().unwrap(), -1.5);
        assert_eq!(r.f64().unwrap(), std::f64::consts::PI);
        assert_eq!(r.i32().unwrap(), -42);
        assert_eq!(r.str().unwrap(), "héllo");
        let fs = r.f32s().unwrap();
        assert_eq!(fs[0].to_bits(), 0.0f32.to_bits());
        assert_eq!(fs[1].to_bits(), (-0.0f32).to_bits());
        assert_eq!(fs[2], f32::INFINITY);
        assert_eq!(r.i8s().unwrap(), vec![-127, 0, 127]);
        assert_eq!(r.i32s().unwrap(), vec![i32::MIN, 9]);
        assert!(r.is_empty());
    }

    #[test]
    fn vocabulary_codecs_cover_every_value() {
        let mut buf = Vec::new();
        for &l in &Layout::ALL {
            put_layout(&mut buf, l);
        }
        for d in [DType::F32, DType::I8, DType::I32] {
            put_dtype(&mut buf, d);
        }
        for &repr in &Repr::ALL {
            put_repr(&mut buf, repr);
        }
        put_qparams(&mut buf, QuantParams { scale: 0.031, zero_point: -5 });
        let edges = repr_transforms();
        put_chain(&mut buf, &edges);

        let mut r = WireReader::new(&buf);
        for &l in &Layout::ALL {
            assert_eq!(get_layout(&mut r).unwrap(), l);
        }
        for d in [DType::F32, DType::I8, DType::I32] {
            assert_eq!(get_dtype(&mut r).unwrap(), d);
        }
        for &repr in &Repr::ALL {
            assert_eq!(get_repr(&mut r).unwrap(), repr);
        }
        assert_eq!(get_qparams(&mut r).unwrap(), QuantParams { scale: 0.031, zero_point: -5 });
        assert_eq!(get_chain(&mut r).unwrap(), edges);
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_and_garbage_are_rejected_not_panicked() {
        // Every prefix of a valid stream must fail cleanly.
        let mut buf = Vec::new();
        put_str(&mut buf, "primitive");
        put_chain(&mut buf, &repr_transforms());
        for cut in 0..buf.len() {
            let mut r = WireReader::new(&buf[..cut]);
            let a = r.str();
            let b = get_chain(&mut r);
            assert!(a.is_err() || b.is_err(), "prefix {cut} decoded fully");
        }
        // Out-of-range codes are corrupt, not panics.
        let mut r = WireReader::new(&[200]);
        assert!(matches!(get_layout(&mut r), Err(WireError::Corrupt(_))));
        let mut r = WireReader::new(&[9]);
        assert!(matches!(get_dtype(&mut r), Err(WireError::Corrupt(_))));
        let mut r = WireReader::new(&[250]);
        assert!(matches!(get_repr(&mut r), Err(WireError::Corrupt(_))));
        // An unregistered layout pair cannot decode as a transform.
        let mut buf = Vec::new();
        put_u8(&mut buf, 0);
        put_layout(&mut buf, Layout::Wch);
        put_layout(&mut buf, Layout::Chw);
        let mut r = WireReader::new(&buf);
        assert!(matches!(get_repr_transform(&mut r), Err(WireError::Corrupt(_))));
        // A huge declared length fails as truncation, not as an OOM
        // allocation attempt.
        let mut buf = Vec::new();
        put_usize(&mut buf, u64::MAX as usize);
        let mut r = WireReader::new(&buf);
        assert_eq!(r.f32s(), Err(WireError::Truncated));
    }

    #[test]
    fn invalid_utf8_is_corrupt() {
        let mut buf = Vec::new();
        put_usize(&mut buf, 2);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        let mut r = WireReader::new(&buf);
        assert!(matches!(r.str(), Err(WireError::Corrupt(_))));
    }
}
