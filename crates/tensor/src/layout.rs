use std::fmt;
use std::str::FromStr;

use crate::TensorError;

/// Physical memory layout of a `(c, h, w)` feature-map tensor.
///
/// The six permutation layouts store the three logical dimensions in the
/// named order, outermost first; e.g. [`Layout::Hwc`] stores rows outermost
/// and channels innermost (the "channels-last" layout). The blocked layouts
/// [`Layout::Chw4`] and [`Layout::Chw8`] pad the channel count up to a
/// multiple of the block and interleave one channel block innermost
/// (`[C/b][H][W][b]`), which is the natural input format for 4- and 8-lane
/// vectorized kernels.
///
/// # Example
///
/// ```
/// use pbqp_dnn_tensor::Layout;
///
/// assert_eq!(Layout::Hwc.to_string(), "HWC");
/// assert_eq!("CHWc8".parse::<Layout>().unwrap(), Layout::Chw8);
/// assert_eq!(Layout::ALL.len(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Layout {
    /// Channel-major planar layout (`C × H × W`), Caffe's canonical layout.
    Chw,
    /// `C × W × H`: channel-major with transposed spatial plane.
    Cwh,
    /// `H × C × W`: row-major over channel strips.
    Hcw,
    /// `H × W × C`: channels-last (interleaved) layout.
    Hwc,
    /// `W × C × H`: column-major over channel strips.
    Wch,
    /// `W × H × C`: column-major channels-last layout.
    Whc,
    /// Channel-blocked `[C/4][H][W][4]` layout for 4-lane vector kernels.
    Chw4,
    /// Channel-blocked `[C/8][H][W][8]` layout for 8-lane vector kernels.
    Chw8,
}

impl Layout {
    /// Every layout supported by the system, in a stable order.
    ///
    /// The order is used to index the data-layout transformation graph, so
    /// it must not change between runs.
    pub const ALL: [Layout; 8] = [
        Layout::Chw,
        Layout::Cwh,
        Layout::Hcw,
        Layout::Hwc,
        Layout::Wch,
        Layout::Whc,
        Layout::Chw4,
        Layout::Chw8,
    ];

    /// The three plain permutation layouts used by published convolution
    /// algorithms (§5.3 of the paper): `CHW`, `HCW` and `HWC`.
    pub const PRIMARY: [Layout; 3] = [Layout::Chw, Layout::Hcw, Layout::Hwc];

    /// Stable small integer id of this layout (its index in [`Layout::ALL`]).
    pub fn index(self) -> usize {
        Layout::ALL.iter().position(|&l| l == self).expect("layout in ALL")
    }

    /// Channel-block width: 4 or 8 for the blocked layouts, 1 otherwise.
    pub fn channel_block(self) -> usize {
        match self {
            Layout::Chw4 => 4,
            Layout::Chw8 => 8,
            _ => 1,
        }
    }

    /// Whether this is one of the channel-blocked layouts.
    pub fn is_blocked(self) -> bool {
        self.channel_block() > 1
    }

    /// Number of `f32` elements a `(c, h, w)` tensor occupies in this layout
    /// (channel counts are padded up to the block width for blocked layouts).
    pub fn storage_len(self, c: usize, h: usize, w: usize) -> usize {
        let b = self.channel_block();
        c.div_ceil(b) * b * h * w
    }

    /// Linear offset of logical element `(c, h, w)` in a tensor of logical
    /// dimensions `(dims_c, dims_h, dims_w)` stored in this layout.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the coordinates are in range.
    #[inline]
    pub fn offset(
        self,
        (dims_c, dims_h, dims_w): (usize, usize, usize),
        c: usize,
        h: usize,
        w: usize,
    ) -> usize {
        debug_assert!(c < dims_c && h < dims_h && w < dims_w);
        match self {
            Layout::Chw => (c * dims_h + h) * dims_w + w,
            Layout::Cwh => (c * dims_w + w) * dims_h + h,
            Layout::Hcw => (h * dims_c + c) * dims_w + w,
            Layout::Hwc => (h * dims_w + w) * dims_c + c,
            Layout::Wch => (w * dims_c + c) * dims_h + h,
            Layout::Whc => (w * dims_h + h) * dims_c + c,
            Layout::Chw4 => {
                let cb = dims_c.div_ceil(4);
                debug_assert!(c / 4 < cb);
                (((c / 4) * dims_h + h) * dims_w + w) * 4 + c % 4
            }
            Layout::Chw8 => {
                let cb = dims_c.div_ceil(8);
                debug_assert!(c / 8 < cb);
                (((c / 8) * dims_h + h) * dims_w + w) * 8 + c % 8
            }
        }
    }

    /// Short human-readable name, e.g. `"CHW"` or `"CHWc8"`.
    pub fn name(self) -> &'static str {
        match self {
            Layout::Chw => "CHW",
            Layout::Cwh => "CWH",
            Layout::Hcw => "HCW",
            Layout::Hwc => "HWC",
            Layout::Wch => "WCH",
            Layout::Whc => "WHC",
            Layout::Chw4 => "CHWc4",
            Layout::Chw8 => "CHWc8",
        }
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Layout {
    type Err = TensorError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Layout::ALL
            .iter()
            .copied()
            .find(|l| l.name().eq_ignore_ascii_case(s))
            .ok_or_else(|| TensorError::UnknownLayout(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn indices_are_stable_and_unique() {
        let ids: HashSet<usize> = Layout::ALL.iter().map(|l| l.index()).collect();
        assert_eq!(ids.len(), Layout::ALL.len());
        assert_eq!(Layout::Chw.index(), 0);
        assert_eq!(Layout::Chw8.index(), 7);
    }

    #[test]
    fn offsets_are_bijective_for_every_layout() {
        let dims = (5, 3, 4);
        for &layout in &Layout::ALL {
            let mut seen = HashSet::new();
            let len = layout.storage_len(dims.0, dims.1, dims.2);
            for c in 0..dims.0 {
                for h in 0..dims.1 {
                    for w in 0..dims.2 {
                        let off = layout.offset(dims, c, h, w);
                        assert!(off < len, "{layout}: offset {off} >= len {len}");
                        assert!(seen.insert(off), "{layout}: duplicate offset {off}");
                    }
                }
            }
            assert_eq!(seen.len(), dims.0 * dims.1 * dims.2);
        }
    }

    #[test]
    fn blocked_storage_is_padded() {
        assert_eq!(Layout::Chw4.storage_len(3, 2, 2), 4 * 2 * 2);
        assert_eq!(Layout::Chw8.storage_len(3, 2, 2), 8 * 2 * 2);
        assert_eq!(Layout::Chw.storage_len(3, 2, 2), 12);
    }

    #[test]
    fn parse_round_trips() {
        for &layout in &Layout::ALL {
            assert_eq!(layout.name().parse::<Layout>().unwrap(), layout);
        }
        assert!("NCHW16".parse::<Layout>().is_err());
    }

    #[test]
    fn contiguity_of_innermost_dimension() {
        let dims = (8, 4, 4);
        // In CHW, consecutive w are adjacent.
        assert_eq!(Layout::Chw.offset(dims, 1, 2, 3), Layout::Chw.offset(dims, 1, 2, 2) + 1);
        // In HWC, consecutive c are adjacent.
        assert_eq!(Layout::Hwc.offset(dims, 3, 2, 1), Layout::Hwc.offset(dims, 2, 2, 1) + 1);
        // In CHWc8, channels within one block are adjacent.
        assert_eq!(Layout::Chw8.offset(dims, 5, 2, 1), Layout::Chw8.offset(dims, 4, 2, 1) + 1);
    }
}
