//! Bump-arena scratch memory for steady-state (zero-allocation) execution.
//!
//! Every convolution primitive needs transient scratch — Toeplitz patch
//! matrices, transformed Winograd kernels, FFT frequency accumulators,
//! GEMM pack panels. Allocating that scratch per call puts a hidden
//! `malloc` tax on the serving hot loop that the paper's cost model never
//! sees. An [`Arena`] amortizes it: the backing store is sized once (at
//! schedule-compile time or during the first warmup run) and every
//! subsequent carve is a pointer bump.
//!
//! # Example
//!
//! ```
//! use pbqp_dnn_tensor::pool::Arena;
//!
//! let mut arena: Arena<f32> = Arena::with_capacity(16);
//! let mark = arena.mark();
//! let [a, b] = arena.take([4, 8]);
//! a.fill(1.0);
//! b[0] = 2.0;
//! assert_eq!(a.len(), 4);
//! arena.release(mark); // both slices are dead here; memory is reusable
//! assert_eq!(arena.in_use(), 0);
//! ```

/// A typed bump arena with checkpoint/release semantics.
///
/// [`Arena::take`] carves N disjoint zero-filled slices in one call; the
/// slices borrow the arena mutably, so they cannot outlive the carve site
/// — when they go out of scope, [`Arena::release`] (or [`Arena::reset`])
/// makes the memory reusable without freeing it. The backing store only
/// ever grows, so after one warmup pass through a workload every `take`
/// is allocation-free.
#[derive(Debug, Default)]
pub struct Arena<T> {
    buf: Vec<T>,
    top: usize,
}

impl<T: Copy + Default> Arena<T> {
    /// An empty arena; grows on first use.
    pub fn new() -> Arena<T> {
        Arena { buf: Vec::new(), top: 0 }
    }

    /// An arena whose backing store already holds `elems` elements.
    pub fn with_capacity(elems: usize) -> Arena<T> {
        Arena { buf: vec![T::default(); elems], top: 0 }
    }

    /// Grows the backing store so `elems` total elements can be carved
    /// without reallocating. Never shrinks.
    pub fn reserve(&mut self, elems: usize) {
        if self.buf.len() < elems {
            self.buf.resize(elems, T::default());
        }
    }

    /// Total backing capacity in elements.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Elements currently carved out.
    pub fn in_use(&self) -> usize {
        self.top
    }

    /// Checkpoint of the current bump pointer, for [`Arena::release`].
    pub fn mark(&self) -> usize {
        self.top
    }

    /// Rewinds the bump pointer to a previous [`Arena::mark`].
    pub fn release(&mut self, mark: usize) {
        debug_assert!(mark <= self.top, "release past the bump pointer");
        self.top = mark;
    }

    /// Rewinds the bump pointer to the start; capacity is retained.
    pub fn reset(&mut self) {
        self.top = 0;
    }

    /// Carves `N` disjoint zero-filled slices of the given lengths.
    ///
    /// Grows the backing store if needed (this is the only path that can
    /// allocate; it never triggers twice for the same watermark). The
    /// returned slices borrow the arena mutably — carve everything a
    /// kernel needs in one call.
    pub fn take<const N: usize>(&mut self, lens: [usize; N]) -> [&mut [T]; N] {
        let total: usize = lens.iter().sum();
        let need = self.top + total;
        if self.buf.len() < need {
            self.buf.resize(need, T::default());
        }
        let start = self.top;
        self.top = need;
        let region = &mut self.buf[start..need];
        region.fill(T::default());
        let mut rest = region;
        let mut out: [&mut [T]; N] = std::array::from_fn(|_| &mut [] as &mut [T]);
        for (slot, &len) in out.iter_mut().zip(&lens) {
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(len);
            *slot = head;
            rest = tail;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_disjoint_zeroed_slices() {
        let mut arena: Arena<f32> = Arena::new();
        let [a, b, c] = arena.take([3, 0, 5]);
        assert_eq!((a.len(), b.len(), c.len()), (3, 0, 5));
        assert!(a.iter().chain(c.iter()).all(|&v| v == 0.0));
        a.fill(7.0);
        c.fill(9.0);
        assert!(a.iter().all(|&v| v == 7.0));
        assert_eq!(arena.in_use(), 8);
    }

    #[test]
    fn release_rewinds_and_rezeroes_on_next_take() {
        let mut arena: Arena<f32> = Arena::with_capacity(8);
        let mark = arena.mark();
        {
            let [a] = arena.take([8]);
            a.fill(1.0);
        }
        arena.release(mark);
        assert_eq!(arena.in_use(), 0);
        let [b] = arena.take([8]);
        assert!(b.iter().all(|&v| v == 0.0), "reused scratch must be re-zeroed");
    }

    #[test]
    fn capacity_only_grows() {
        let mut arena: Arena<u8> = Arena::new();
        arena.reserve(100);
        assert_eq!(arena.capacity(), 100);
        arena.reserve(10);
        assert_eq!(arena.capacity(), 100);
        let _ = arena.take([150]);
        assert!(arena.capacity() >= 150);
        arena.reset();
        assert!(arena.capacity() >= 150);
    }

    #[test]
    fn nested_marks_stack() {
        let mut arena: Arena<usize> = Arena::new();
        let outer = arena.mark();
        let _ = arena.take([4]);
        let inner = arena.mark();
        let _ = arena.take([4]);
        arena.release(inner);
        assert_eq!(arena.in_use(), 4);
        arena.release(outer);
        assert_eq!(arena.in_use(), 0);
    }
}
