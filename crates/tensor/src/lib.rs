//! Tensor substrate for the PBQP-DNN primitive-selection system.
//!
//! This crate provides the dense tensors that every convolution primitive
//! in the workspace operates on — `f32` by default, with `i8` (affine
//! quantized) and `i32` (accumulator) storage behind the same API —
//! together with the *data layouts* that are the heart of the paper's
//! optimization problem: a convolution primitive is a triple
//! `{L_in, P, L_out}` and connecting two primitives whose layouts
//! disagree requires a data-layout transformation. Precision extends the
//! same idea: [`Repr`] pairs a layout with a [`DType`], and
//! quantize/dequantize are just more edges of the transformation graph.
//!
//! # Layouts
//!
//! A feature-map tensor is logically a 3-D array indexed by
//! `(channel, row, column)` — `(c, h, w)`. Physically it can be stored in any
//! permutation of those dimensions ([`Layout::Chw`], [`Layout::Hwc`], …) or
//! in a channel-blocked form ([`Layout::Chw4`], [`Layout::Chw8`]) where
//! groups of 4 or 8 channels are interleaved innermost, as used by
//! vectorized kernels and vendor libraries.
//!
//! # Example
//!
//! ```
//! use pbqp_dnn_tensor::{Layout, Tensor};
//!
//! let t = Tensor::from_fn(3, 4, 5, Layout::Chw, |c, h, w| (c + h + w) as f32);
//! let u = t.to_layout(Layout::Hwc);
//! assert_eq!(t.at(2, 3, 4), u.at(2, 3, 4));
//! assert_eq!(u.layout(), Layout::Hwc);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dtype;
mod error;
mod kernel;
mod layout;
pub mod pool;
pub mod rng;
mod tensor;
pub mod transform;
pub mod wire;

pub use dtype::{DType, QuantParams, Repr};
pub use error::TensorError;
pub use kernel::{KernelTensor, QuantizedKernel};
pub use layout::Layout;
pub use tensor::Tensor;
