use std::error::Error;
use std::fmt;

use crate::{DType, Layout};

/// Errors produced by tensor construction and layout conversion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// A layout name failed to parse.
    UnknownLayout(String),
    /// Supplied buffer length does not match the layout's storage length.
    LengthMismatch {
        /// Required number of elements for the tensor's dims and layout.
        expected: usize,
        /// Number of elements actually supplied.
        actual: usize,
    },
    /// Two tensors were expected to share dimensions but do not.
    ShapeMismatch {
        /// Dimensions of the left operand.
        left: (usize, usize, usize),
        /// Dimensions of the right operand.
        right: (usize, usize, usize),
    },
    /// No direct transformation routine exists between two layouts.
    NoDirectTransform {
        /// Source layout.
        from: Layout,
        /// Destination layout.
        to: Layout,
    },
    /// A transformation expected a tensor of one element type but was
    /// handed another (e.g. dequantizing an `f32` tensor).
    DTypeMismatch {
        /// Element type the operation requires.
        expected: DType,
        /// Element type actually supplied.
        found: DType,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::UnknownLayout(s) => write!(f, "unknown layout name `{s}`"),
            TensorError::LengthMismatch { expected, actual } => {
                write!(f, "buffer of {actual} elements, layout requires {expected}")
            }
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            TensorError::NoDirectTransform { from, to } => {
                write!(f, "no direct layout transformation from {from} to {to}")
            }
            TensorError::DTypeMismatch { expected, found } => {
                write!(f, "dtype mismatch: operation requires {expected}, tensor is {found}")
            }
        }
    }
}

impl Error for TensorError {}
