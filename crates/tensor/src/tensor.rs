use std::fmt;

use crate::{DType, Layout, QuantParams, Repr, TensorError};

/// Element storage of a [`Tensor`], tagged by [`DType`].
///
/// The `f32` variant is the historical dense storage every existing
/// primitive operates on; `I8` carries affine-quantized activations for
/// the int8 execution path; `I32` holds raw GEMM accumulators.
#[derive(Clone, PartialEq)]
enum Storage {
    F32(Vec<f32>),
    I8(Vec<i8>),
    I32(Vec<i32>),
}

impl Storage {
    fn dtype(&self) -> DType {
        match self {
            Storage::F32(_) => DType::F32,
            Storage::I8(_) => DType::I8,
            Storage::I32(_) => DType::I32,
        }
    }

    fn len(&self) -> usize {
        match self {
            Storage::F32(v) => v.len(),
            Storage::I8(v) => v.len(),
            Storage::I32(v) => v.len(),
        }
    }

    fn new(dtype: DType, len: usize) -> Storage {
        match dtype {
            DType::F32 => Storage::F32(vec![0.0; len]),
            DType::I8 => Storage::I8(vec![0; len]),
            DType::I32 => Storage::I32(vec![0; len]),
        }
    }

    /// Resizes in place when the dtype already matches (keeping capacity);
    /// otherwise swaps in fresh storage of the right type.
    fn reuse(&mut self, dtype: DType, len: usize) {
        match (&mut *self, dtype) {
            (Storage::F32(v), DType::F32) => v.resize(len, 0.0),
            (Storage::I8(v), DType::I8) => v.resize(len, 0),
            (Storage::I32(v), DType::I32) => v.resize(len, 0),
            (slot, _) => *slot = Storage::new(dtype, len),
        }
    }

    fn reserve(&mut self, elems: usize) {
        match self {
            Storage::F32(v) => {
                if v.capacity() < elems {
                    v.reserve(elems - v.len());
                }
            }
            Storage::I8(v) => {
                if v.capacity() < elems {
                    v.reserve(elems - v.len());
                }
            }
            Storage::I32(v) => {
                if v.capacity() < elems {
                    v.reserve(elems - v.len());
                }
            }
        }
    }
}

/// A dense feature-map tensor with logical dimensions `(c, h, w)` stored
/// in one of the supported [`Layout`]s at one of the supported [`DType`]s
/// (dense `f32` by default).
///
/// All convolution primitives in the workspace consume and produce
/// `Tensor`s. The logical view is always `(channel, row, column)`;
/// [`Tensor::at`] and [`Tensor::set`] translate through the layout **and
/// the dtype** (quantized tensors dequantize on read), while the typed
/// accessors ([`Tensor::data`], [`Tensor::data_i8`], [`Tensor::data_i32`])
/// expose the raw storage for layout-aware kernels.
///
/// # Example
///
/// ```
/// use pbqp_dnn_tensor::{Layout, Tensor};
///
/// let mut t = Tensor::zeros(2, 3, 3, Layout::Hwc);
/// t.set(1, 2, 0, 7.0);
/// assert_eq!(t.at(1, 2, 0), 7.0);
/// assert_eq!(t.data().len(), 2 * 3 * 3);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    dims: (usize, usize, usize),
    layout: Layout,
    storage: Storage,
    qparams: QuantParams,
}

impl Tensor {
    /// Creates a zero-filled `f32` tensor of logical dimensions `(c, h, w)`.
    pub fn zeros(c: usize, h: usize, w: usize, layout: Layout) -> Tensor {
        Tensor::zeros_dtype(c, h, w, layout, DType::F32)
    }

    /// Creates a zero-filled tensor of the given dtype. Quantization
    /// parameters start at [`QuantParams::IDENTITY`]; set them with
    /// [`Tensor::set_qparams`].
    pub fn zeros_dtype(c: usize, h: usize, w: usize, layout: Layout, dtype: DType) -> Tensor {
        Tensor {
            dims: (c, h, w),
            layout,
            storage: Storage::new(dtype, layout.storage_len(c, h, w)),
            qparams: QuantParams::IDENTITY,
        }
    }

    /// Creates an empty `f32` placeholder tensor (`(0, 0, 0)`, no storage).
    ///
    /// Empty tensors allocate nothing; they exist to be re-shaped in
    /// place with [`Tensor::reuse_as`] / [`Tensor::assign_from`] by
    /// buffer-pooling code.
    pub fn empty() -> Tensor {
        Tensor::empty_dtype(DType::F32)
    }

    /// [`Tensor::empty`] with an explicit dtype, so buffer pools can
    /// pre-commit a slot to the element type it will recycle (switching a
    /// slot's dtype later discards its storage — see
    /// [`Tensor::reuse_as_dtype`]).
    pub fn empty_dtype(dtype: DType) -> Tensor {
        Tensor {
            dims: (0, 0, 0),
            layout: Layout::Chw,
            storage: Storage::new(dtype, 0),
            qparams: QuantParams::IDENTITY,
        }
    }

    /// Re-shapes this tensor in place to `(c, h, w)` in `layout` at `f32`,
    /// recycling the existing storage (see [`Tensor::reuse_as_dtype`]).
    pub fn reuse_as(&mut self, c: usize, h: usize, w: usize, layout: Layout) {
        self.reuse_as_dtype(c, h, w, layout, DType::F32);
    }

    /// Re-shapes this tensor in place to `(c, h, w)` in `layout` with
    /// element type `dtype`, recycling the existing storage.
    ///
    /// When the dtype is unchanged, the storage is resized but its
    /// capacity never shrinks, so repeated reuse at steady-state sizes is
    /// allocation-free; **changing the dtype swaps the backing store**
    /// (steady-state buffer pools keep one slot per dtype). Element values
    /// are unspecified after the call; quantization parameters reset to
    /// [`QuantParams::IDENTITY`].
    pub fn reuse_as_dtype(&mut self, c: usize, h: usize, w: usize, layout: Layout, dtype: DType) {
        self.dims = (c, h, w);
        self.layout = layout;
        self.qparams = QuantParams::IDENTITY;
        let need = layout.storage_len(c, h, w);
        if self.storage.len() != need || self.storage.dtype() != dtype {
            self.storage.reuse(dtype, need);
        }
    }

    /// Grows the storage capacity (in the tensor's current dtype) to hold
    /// `elems` elements without changing the logical shape. Used by buffer
    /// pools to pre-size slots at plan-compile time.
    pub fn reserve_storage(&mut self, elems: usize) {
        self.storage.reserve(elems);
    }

    /// Makes this tensor a copy of `src` (dims, layout, dtype,
    /// quantization parameters and data), recycling the existing storage —
    /// the steady-state counterpart of `src.clone()`.
    pub fn assign_from(&mut self, src: &Tensor) {
        let (c, h, w) = src.dims;
        self.reuse_as_dtype(c, h, w, src.layout, src.dtype());
        self.qparams = src.qparams;
        match (&mut self.storage, &src.storage) {
            (Storage::F32(d), Storage::F32(s)) => d.copy_from_slice(s),
            (Storage::I8(d), Storage::I8(s)) => d.copy_from_slice(s),
            (Storage::I32(d), Storage::I32(s)) => d.copy_from_slice(s),
            _ => unreachable!("reuse_as_dtype matched the dtypes"),
        }
    }

    /// Creates an `f32` tensor whose element `(c, h, w)` is `f(c, h, w)`.
    pub fn from_fn<F>(c: usize, h: usize, w: usize, layout: Layout, mut f: F) -> Tensor
    where
        F: FnMut(usize, usize, usize) -> f32,
    {
        let mut t = Tensor::zeros(c, h, w, layout);
        for ci in 0..c {
            for hi in 0..h {
                for wi in 0..w {
                    t.set(ci, hi, wi, f(ci, hi, wi));
                }
            }
        }
        t
    }

    /// Wraps an existing `f32` buffer as a tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the storage length required by `layout` for the given dimensions.
    pub fn from_vec(
        c: usize,
        h: usize,
        w: usize,
        layout: Layout,
        data: Vec<f32>,
    ) -> Result<Tensor, TensorError> {
        let expected = layout.storage_len(c, h, w);
        if data.len() != expected {
            return Err(TensorError::LengthMismatch { expected, actual: data.len() });
        }
        Ok(Tensor {
            dims: (c, h, w),
            layout,
            storage: Storage::F32(data),
            qparams: QuantParams::IDENTITY,
        })
    }

    /// Creates a deterministic pseudo-random `f32` tensor.
    ///
    /// This is the input generator used by the profiler: layer cost depends
    /// on dimensions rather than values (§3.1 of the paper), but correctness
    /// tests want reproducible data. A small multiplicative LCG keeps the
    /// crate free of external dependencies.
    pub fn random(c: usize, h: usize, w: usize, layout: Layout, seed: u64) -> Tensor {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
        Tensor::from_fn(c, h, w, layout, |_, _, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            // Map the top 24 bits to [-1, 1).
            ((state >> 40) as f32 / (1u64 << 23) as f32) - 1.0
        })
    }

    /// Logical dimensions `(c, h, w)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        self.dims
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.dims.0
    }

    /// Feature-map height.
    pub fn height(&self) -> usize {
        self.dims.1
    }

    /// Feature-map width.
    pub fn width(&self) -> usize {
        self.dims.2
    }

    /// The physical layout of the storage.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// The element type of the storage.
    pub fn dtype(&self) -> DType {
        self.storage.dtype()
    }

    /// The representation (layout × dtype) of this tensor.
    pub fn repr(&self) -> Repr {
        Repr { layout: self.layout, dtype: self.dtype() }
    }

    /// Quantization parameters ([`QuantParams::IDENTITY`] for non-`i8`
    /// tensors).
    pub fn qparams(&self) -> QuantParams {
        self.qparams
    }

    /// Replaces the quantization parameters (meaningful for `i8` tensors).
    pub fn set_qparams(&mut self, qparams: QuantParams) {
        self.qparams = qparams;
    }

    /// Raw `f32` storage slice (layout order, including any blocked
    /// padding).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not `f32`; use [`Tensor::data_i8`] /
    /// [`Tensor::data_i32`] for quantized storage.
    pub fn data(&self) -> &[f32] {
        match &self.storage {
            Storage::F32(v) => v,
            s => panic!("Tensor::data on a {} tensor", s.dtype()),
        }
    }

    /// Mutable raw `f32` storage slice.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not `f32`.
    pub fn data_mut(&mut self) -> &mut [f32] {
        match &mut self.storage {
            Storage::F32(v) => v,
            s => panic!("Tensor::data_mut on a {} tensor", s.dtype()),
        }
    }

    /// Raw `i8` storage slice.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not `i8`.
    pub fn data_i8(&self) -> &[i8] {
        match &self.storage {
            Storage::I8(v) => v,
            s => panic!("Tensor::data_i8 on a {} tensor", s.dtype()),
        }
    }

    /// Mutable raw `i8` storage slice.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not `i8`.
    pub fn data_i8_mut(&mut self) -> &mut [i8] {
        match &mut self.storage {
            Storage::I8(v) => v,
            s => panic!("Tensor::data_i8_mut on a {} tensor", s.dtype()),
        }
    }

    /// Raw `i32` storage slice.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not `i32`.
    pub fn data_i32(&self) -> &[i32] {
        match &self.storage {
            Storage::I32(v) => v,
            s => panic!("Tensor::data_i32 on a {} tensor", s.dtype()),
        }
    }

    /// Mutable raw `i32` storage slice.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not `i32`.
    pub fn data_i32_mut(&mut self) -> &mut [i32] {
        match &mut self.storage {
            Storage::I32(v) => v,
            s => panic!("Tensor::data_i32_mut on a {} tensor", s.dtype()),
        }
    }

    /// Logical (real-valued) element at `(c, h, w)`: quantized storage is
    /// dequantized through the tensor's [`QuantParams`].
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if a coordinate is out of range.
    #[inline]
    pub fn at(&self, c: usize, h: usize, w: usize) -> f32 {
        let off = self.layout.offset(self.dims, c, h, w);
        match &self.storage {
            Storage::F32(v) => v[off],
            Storage::I8(v) => self.qparams.dequantize(v[off]),
            Storage::I32(v) => (v[off] - self.qparams.zero_point) as f32 * self.qparams.scale,
        }
    }

    /// Stores the real value `v` at logical position `(c, h, w)`,
    /// quantizing through the tensor's [`QuantParams`] for integer
    /// storage.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if a coordinate is out of range.
    #[inline]
    pub fn set(&mut self, c: usize, h: usize, w: usize, v: f32) {
        let off = self.layout.offset(self.dims, c, h, w);
        match &mut self.storage {
            Storage::F32(s) => s[off] = v,
            Storage::I8(s) => s[off] = self.qparams.quantize(v),
            Storage::I32(s) => {
                s[off] = (v / self.qparams.scale).round() as i32 + self.qparams.zero_point
            }
        }
    }

    /// Linear offset of `(c, h, w)` in the raw storage.
    #[inline]
    pub fn offset(&self, c: usize, h: usize, w: usize) -> usize {
        self.layout.offset(self.dims, c, h, w)
    }

    /// Copies this tensor into a new **f32** tensor with layout `layout`
    /// (quantized sources are dequantized).
    ///
    /// This is the generic (slow-path) conversion; the optimized direct
    /// transformation primitives live in [`crate::transform`].
    pub fn to_layout(&self, layout: Layout) -> Tensor {
        if layout == self.layout && self.dtype() == DType::F32 {
            return self.clone();
        }
        let (c, h, w) = self.dims;
        let mut out = Tensor::zeros(c, h, w, layout);
        for ci in 0..c {
            for hi in 0..h {
                for wi in 0..w {
                    out.set(ci, hi, wi, self.at(ci, hi, wi));
                }
            }
        }
        out
    }

    /// Maximum absolute element-wise difference to `other`, comparing
    /// logical (dequantized) values — layouts and dtypes may differ.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if dimensions differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32, TensorError> {
        if self.dims != other.dims {
            return Err(TensorError::ShapeMismatch { left: self.dims, right: other.dims });
        }
        let (c, h, w) = self.dims;
        let mut worst = 0.0f32;
        for ci in 0..c {
            for hi in 0..h {
                for wi in 0..w {
                    worst = worst.max((self.at(ci, hi, wi) - other.at(ci, hi, wi)).abs());
                }
            }
        }
        Ok(worst)
    }

    /// Whether every element matches `other` within absolute tolerance
    /// `tol`, irrespective of layout or dtype.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if dimensions differ.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> Result<bool, TensorError> {
        Ok(self.max_abs_diff(other)? <= tol)
    }

    /// Sum of all logical elements (useful as a cheap checksum in tests).
    pub fn checksum(&self) -> f64 {
        let (c, h, w) = self.dims;
        let mut acc = 0.0f64;
        for ci in 0..c {
            for hi in 0..h {
                for wi in 0..w {
                    acc += f64::from(self.at(ci, hi, wi));
                }
            }
        }
        acc
    }

    /// Backing-store capacity in elements of the current dtype (test and
    /// pool-sizing aid).
    pub fn storage_capacity(&self) -> usize {
        match &self.storage {
            Storage::F32(v) => v.capacity(),
            Storage::I8(v) => v.capacity(),
            Storage::I32(v) => v.capacity(),
        }
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tensor")
            .field("dims", &self.dims)
            .field("layout", &self.layout)
            .field("dtype", &self.dtype())
            .field("len", &self.storage.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_is_all_zero_in_every_layout() {
        for &layout in &Layout::ALL {
            let t = Tensor::zeros(5, 3, 2, layout);
            assert!(t.data().iter().all(|&x| x == 0.0));
            assert_eq!(t.checksum(), 0.0);
        }
    }

    #[test]
    fn set_then_at_round_trips_everywhere() {
        for &layout in &Layout::ALL {
            let mut t = Tensor::zeros(5, 4, 3, layout);
            let mut v = 0.0;
            for c in 0..5 {
                for h in 0..4 {
                    for w in 0..3 {
                        v += 1.0;
                        t.set(c, h, w, v);
                    }
                }
            }
            let mut expect = 0.0;
            for c in 0..5 {
                for h in 0..4 {
                    for w in 0..3 {
                        expect += 1.0;
                        assert_eq!(t.at(c, h, w), expect, "layout {layout}");
                    }
                }
            }
        }
    }

    #[test]
    fn to_layout_preserves_values() {
        let t = Tensor::from_fn(6, 5, 4, Layout::Chw, |c, h, w| (c * 100 + h * 10 + w) as f32);
        for &layout in &Layout::ALL {
            let u = t.to_layout(layout);
            assert_eq!(u.max_abs_diff(&t).unwrap(), 0.0, "layout {layout}");
        }
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(2, 2, 2, Layout::Chw, vec![0.0; 8]).is_ok());
        let err = Tensor::from_vec(2, 2, 2, Layout::Chw, vec![0.0; 7]).unwrap_err();
        assert_eq!(err, TensorError::LengthMismatch { expected: 8, actual: 7 });
        // Blocked layout requires padded storage.
        assert!(Tensor::from_vec(3, 2, 2, Layout::Chw4, vec![0.0; 16]).is_ok());
    }

    #[test]
    fn random_is_deterministic_and_seed_sensitive() {
        let a = Tensor::random(3, 4, 5, Layout::Chw, 42);
        let b = Tensor::random(3, 4, 5, Layout::Chw, 42);
        let c = Tensor::random(3, 4, 5, Layout::Chw, 43);
        assert_eq!(a, b);
        assert!(a.max_abs_diff(&c).unwrap() > 0.0);
        assert!(a.data().iter().all(|&x| (-1.0..1.0).contains(&x)));
    }

    #[test]
    fn empty_reuse_and_assign_recycle_storage() {
        let mut slot = Tensor::empty();
        assert_eq!(slot.dims(), (0, 0, 0));
        assert_eq!(slot.data().len(), 0);
        slot.reserve_storage(3 * 4 * 5);
        let cap = slot.storage_capacity();
        slot.reuse_as(3, 4, 5, Layout::Hwc);
        assert_eq!(slot.dims(), (3, 4, 5));
        assert_eq!(slot.data().len(), Layout::Hwc.storage_len(3, 4, 5));
        assert_eq!(slot.storage_capacity(), cap, "reuse within capacity must not reallocate");
        let src = Tensor::random(2, 4, 5, Layout::Chw4, 9);
        slot.assign_from(&src);
        assert_eq!(slot.layout(), Layout::Chw4);
        assert_eq!(slot.data(), src.data());
        // Shrinking keeps capacity for later growth.
        slot.reuse_as(1, 1, 1, Layout::Chw);
        assert!(slot.storage_capacity() >= Layout::Hwc.storage_len(3, 4, 5));
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let a = Tensor::zeros(1, 2, 3, Layout::Chw);
        let b = Tensor::zeros(1, 2, 4, Layout::Chw);
        assert!(matches!(a.max_abs_diff(&b), Err(TensorError::ShapeMismatch { .. })));
    }

    #[test]
    fn quantized_tensor_round_trips_through_logical_accessors() {
        let p = QuantParams::from_range(-2.0, 2.0);
        for &layout in &Repr::I8_LAYOUTS {
            let mut q = Tensor::zeros_dtype(3, 4, 4, layout, DType::I8);
            q.set_qparams(p);
            q.set(1, 2, 3, 1.25);
            assert!((q.at(1, 2, 3) - 1.25).abs() <= p.scale / 2.0 + 1e-6);
            assert_eq!(q.dtype(), DType::I8);
            assert_eq!(q.repr(), Repr::i8(layout));
            assert_eq!(q.data_i8().len(), 3 * 4 * 4);
        }
    }

    #[test]
    fn assign_from_carries_dtype_and_qparams() {
        let p = QuantParams::from_range(-1.0, 1.0);
        let mut src = Tensor::zeros_dtype(2, 2, 2, Layout::Chw, DType::I8);
        src.set_qparams(p);
        src.set(0, 0, 0, 0.5);
        let mut dst = Tensor::empty();
        dst.assign_from(&src);
        assert_eq!(dst.dtype(), DType::I8);
        assert_eq!(dst.qparams(), p);
        assert_eq!(dst.data_i8(), src.data_i8());
        assert_eq!(dst.max_abs_diff(&src).unwrap(), 0.0);
    }

    #[test]
    fn reuse_as_dtype_switches_storage_and_resets_qparams() {
        let mut t = Tensor::zeros_dtype(2, 2, 2, Layout::Chw, DType::I8);
        t.set_qparams(QuantParams::from_range(-4.0, 4.0));
        t.reuse_as_dtype(2, 3, 2, Layout::Chw, DType::I32);
        assert_eq!(t.dtype(), DType::I32);
        assert_eq!(t.qparams(), QuantParams::IDENTITY);
        assert_eq!(t.data_i32().len(), 12);
        t.reuse_as(1, 1, 1, Layout::Chw);
        assert_eq!(t.dtype(), DType::F32);
    }

    #[test]
    #[should_panic(expected = "Tensor::data on a i8 tensor")]
    fn f32_accessor_rejects_quantized_storage() {
        let t = Tensor::zeros_dtype(1, 1, 1, Layout::Chw, DType::I8);
        let _ = t.data();
    }
}
