use std::fmt;

use crate::{Layout, TensorError};

/// A dense single-precision feature-map tensor with logical dimensions
/// `(c, h, w)` stored in one of the supported [`Layout`]s.
///
/// All convolution primitives in the workspace consume and produce
/// `Tensor`s. The logical view is always `(channel, row, column)`;
/// [`Tensor::at`] and [`Tensor::set`] translate through the layout, while
/// [`Tensor::data`] exposes the raw storage for layout-aware kernels.
///
/// # Example
///
/// ```
/// use pbqp_dnn_tensor::{Layout, Tensor};
///
/// let mut t = Tensor::zeros(2, 3, 3, Layout::Hwc);
/// t.set(1, 2, 0, 7.0);
/// assert_eq!(t.at(1, 2, 0), 7.0);
/// assert_eq!(t.data().len(), 2 * 3 * 3);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    dims: (usize, usize, usize),
    layout: Layout,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero-filled tensor of logical dimensions `(c, h, w)`.
    pub fn zeros(c: usize, h: usize, w: usize, layout: Layout) -> Tensor {
        Tensor { dims: (c, h, w), layout, data: vec![0.0; layout.storage_len(c, h, w)] }
    }

    /// Creates an empty placeholder tensor (`(0, 0, 0)`, no storage).
    ///
    /// Empty tensors allocate nothing; they exist to be re-shaped in
    /// place with [`Tensor::reuse_as`] / [`Tensor::assign_from`] by
    /// buffer-pooling code.
    pub fn empty() -> Tensor {
        Tensor { dims: (0, 0, 0), layout: Layout::Chw, data: Vec::new() }
    }

    /// Re-shapes this tensor in place to `(c, h, w)` in `layout`,
    /// recycling the existing storage.
    ///
    /// The storage is resized to the new layout's requirement but its
    /// capacity never shrinks, so repeated reuse at steady-state sizes is
    /// allocation-free. Element values are unspecified after the call
    /// (previous contents may remain); callers overwrite or zero them.
    pub fn reuse_as(&mut self, c: usize, h: usize, w: usize, layout: Layout) {
        self.dims = (c, h, w);
        self.layout = layout;
        let need = layout.storage_len(c, h, w);
        if self.data.len() != need {
            self.data.resize(need, 0.0);
        }
    }

    /// Grows the storage capacity to hold `elems` elements without
    /// changing the logical shape. Used by buffer pools to pre-size slots
    /// at plan-compile time.
    pub fn reserve_storage(&mut self, elems: usize) {
        if self.data.capacity() < elems {
            self.data.reserve(elems - self.data.len());
        }
    }

    /// Makes this tensor a copy of `src` (dims, layout and data),
    /// recycling the existing storage — the steady-state counterpart of
    /// `src.clone()`.
    pub fn assign_from(&mut self, src: &Tensor) {
        let (c, h, w) = src.dims;
        self.reuse_as(c, h, w, src.layout);
        self.data.copy_from_slice(&src.data);
    }

    /// Creates a tensor whose element `(c, h, w)` is `f(c, h, w)`.
    pub fn from_fn<F>(c: usize, h: usize, w: usize, layout: Layout, mut f: F) -> Tensor
    where
        F: FnMut(usize, usize, usize) -> f32,
    {
        let mut t = Tensor::zeros(c, h, w, layout);
        for ci in 0..c {
            for hi in 0..h {
                for wi in 0..w {
                    t.set(ci, hi, wi, f(ci, hi, wi));
                }
            }
        }
        t
    }

    /// Wraps an existing buffer as a tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the storage length required by `layout` for the given dimensions.
    pub fn from_vec(
        c: usize,
        h: usize,
        w: usize,
        layout: Layout,
        data: Vec<f32>,
    ) -> Result<Tensor, TensorError> {
        let expected = layout.storage_len(c, h, w);
        if data.len() != expected {
            return Err(TensorError::LengthMismatch { expected, actual: data.len() });
        }
        Ok(Tensor { dims: (c, h, w), layout, data })
    }

    /// Creates a deterministic pseudo-random tensor.
    ///
    /// This is the input generator used by the profiler: layer cost depends
    /// on dimensions rather than values (§3.1 of the paper), but correctness
    /// tests want reproducible data. A small multiplicative LCG keeps the
    /// crate free of external dependencies.
    pub fn random(c: usize, h: usize, w: usize, layout: Layout, seed: u64) -> Tensor {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
        Tensor::from_fn(c, h, w, layout, |_, _, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            // Map the top 24 bits to [-1, 1).
            ((state >> 40) as f32 / (1u64 << 23) as f32) - 1.0
        })
    }

    /// Logical dimensions `(c, h, w)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        self.dims
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.dims.0
    }

    /// Feature-map height.
    pub fn height(&self) -> usize {
        self.dims.1
    }

    /// Feature-map width.
    pub fn width(&self) -> usize {
        self.dims.2
    }

    /// The physical layout of the storage.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Raw storage slice (layout order, including any blocked padding).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw storage slice.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at logical position `(c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if a coordinate is out of range.
    #[inline]
    pub fn at(&self, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.layout.offset(self.dims, c, h, w)]
    }

    /// Stores `v` at logical position `(c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if a coordinate is out of range.
    #[inline]
    pub fn set(&mut self, c: usize, h: usize, w: usize, v: f32) {
        let off = self.layout.offset(self.dims, c, h, w);
        self.data[off] = v;
    }

    /// Linear offset of `(c, h, w)` in [`Tensor::data`].
    #[inline]
    pub fn offset(&self, c: usize, h: usize, w: usize) -> usize {
        self.layout.offset(self.dims, c, h, w)
    }

    /// Copies this tensor into a new tensor with layout `layout`.
    ///
    /// This is the generic (slow-path) conversion; the optimized direct
    /// transformation primitives live in [`crate::transform`].
    pub fn to_layout(&self, layout: Layout) -> Tensor {
        if layout == self.layout {
            return self.clone();
        }
        let (c, h, w) = self.dims;
        let mut out = Tensor::zeros(c, h, w, layout);
        for ci in 0..c {
            for hi in 0..h {
                for wi in 0..w {
                    out.set(ci, hi, wi, self.at(ci, hi, wi));
                }
            }
        }
        out
    }

    /// Maximum absolute element-wise difference to `other`, comparing
    /// logical values (layouts may differ).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if dimensions differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32, TensorError> {
        if self.dims != other.dims {
            return Err(TensorError::ShapeMismatch { left: self.dims, right: other.dims });
        }
        let (c, h, w) = self.dims;
        let mut worst = 0.0f32;
        for ci in 0..c {
            for hi in 0..h {
                for wi in 0..w {
                    worst = worst.max((self.at(ci, hi, wi) - other.at(ci, hi, wi)).abs());
                }
            }
        }
        Ok(worst)
    }

    /// Whether every element matches `other` within absolute tolerance
    /// `tol`, irrespective of layout.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if dimensions differ.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> Result<bool, TensorError> {
        Ok(self.max_abs_diff(other)? <= tol)
    }

    /// Sum of all logical elements (useful as a cheap checksum in tests).
    pub fn checksum(&self) -> f64 {
        let (c, h, w) = self.dims;
        let mut acc = 0.0f64;
        for ci in 0..c {
            for hi in 0..h {
                for wi in 0..w {
                    acc += f64::from(self.at(ci, hi, wi));
                }
            }
        }
        acc
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tensor")
            .field("dims", &self.dims)
            .field("layout", &self.layout)
            .field("len", &self.data.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_is_all_zero_in_every_layout() {
        for &layout in &Layout::ALL {
            let t = Tensor::zeros(5, 3, 2, layout);
            assert!(t.data().iter().all(|&x| x == 0.0));
            assert_eq!(t.checksum(), 0.0);
        }
    }

    #[test]
    fn set_then_at_round_trips_everywhere() {
        for &layout in &Layout::ALL {
            let mut t = Tensor::zeros(5, 4, 3, layout);
            let mut v = 0.0;
            for c in 0..5 {
                for h in 0..4 {
                    for w in 0..3 {
                        v += 1.0;
                        t.set(c, h, w, v);
                    }
                }
            }
            let mut expect = 0.0;
            for c in 0..5 {
                for h in 0..4 {
                    for w in 0..3 {
                        expect += 1.0;
                        assert_eq!(t.at(c, h, w), expect, "layout {layout}");
                    }
                }
            }
        }
    }

    #[test]
    fn to_layout_preserves_values() {
        let t = Tensor::from_fn(6, 5, 4, Layout::Chw, |c, h, w| (c * 100 + h * 10 + w) as f32);
        for &layout in &Layout::ALL {
            let u = t.to_layout(layout);
            assert_eq!(u.max_abs_diff(&t).unwrap(), 0.0, "layout {layout}");
        }
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(2, 2, 2, Layout::Chw, vec![0.0; 8]).is_ok());
        let err = Tensor::from_vec(2, 2, 2, Layout::Chw, vec![0.0; 7]).unwrap_err();
        assert_eq!(err, TensorError::LengthMismatch { expected: 8, actual: 7 });
        // Blocked layout requires padded storage.
        assert!(Tensor::from_vec(3, 2, 2, Layout::Chw4, vec![0.0; 16]).is_ok());
    }

    #[test]
    fn random_is_deterministic_and_seed_sensitive() {
        let a = Tensor::random(3, 4, 5, Layout::Chw, 42);
        let b = Tensor::random(3, 4, 5, Layout::Chw, 42);
        let c = Tensor::random(3, 4, 5, Layout::Chw, 43);
        assert_eq!(a, b);
        assert!(a.max_abs_diff(&c).unwrap() > 0.0);
        assert!(a.data().iter().all(|&x| (-1.0..1.0).contains(&x)));
    }

    #[test]
    fn empty_reuse_and_assign_recycle_storage() {
        let mut slot = Tensor::empty();
        assert_eq!(slot.dims(), (0, 0, 0));
        assert_eq!(slot.data().len(), 0);
        slot.reserve_storage(3 * 4 * 5);
        let cap = slot.data.capacity();
        slot.reuse_as(3, 4, 5, Layout::Hwc);
        assert_eq!(slot.dims(), (3, 4, 5));
        assert_eq!(slot.data().len(), Layout::Hwc.storage_len(3, 4, 5));
        assert_eq!(slot.data.capacity(), cap, "reuse within capacity must not reallocate");
        let src = Tensor::random(2, 4, 5, Layout::Chw4, 9);
        slot.assign_from(&src);
        assert_eq!(slot.layout(), Layout::Chw4);
        assert_eq!(slot.data(), src.data());
        // Shrinking keeps capacity for later growth.
        slot.reuse_as(1, 1, 1, Layout::Chw);
        assert!(slot.data.capacity() >= Layout::Hwc.storage_len(3, 4, 5));
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let a = Tensor::zeros(1, 2, 3, Layout::Chw);
        let b = Tensor::zeros(1, 2, 4, Layout::Chw);
        assert!(matches!(a.max_abs_diff(&b), Err(TensorError::ShapeMismatch { .. })));
    }
}
