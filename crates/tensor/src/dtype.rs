//! Numeric precision support: element types, affine quantization
//! parameters and the *representation* (layout × dtype) pairs that extend
//! the paper's data-layout selection space to mixed precision.
//!
//! The paper's PBQP formulation (§3.1) selects one primitive per layer and
//! pays data-layout conversion costs on every edge. Numeric precision has
//! exactly the same shape: an int8 primitive is just another candidate,
//! and quantize/dequantize are just more DT-graph edges with measurable
//! costs. [`Repr`] is the node type of that extended graph: every f32
//! layout plus the quantized layouts the int8 kernels consume.

use std::fmt;

use crate::Layout;

/// Element type of a [`crate::Tensor`]'s storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum DType {
    /// 32-bit IEEE float — the historical (and default) precision.
    #[default]
    F32,
    /// 8-bit signed integer with affine [`QuantParams`].
    I8,
    /// 32-bit signed integer — the accumulator type of the int8 GEMM
    /// pipeline; never appears in the selection space.
    I32,
}

impl DType {
    /// Storage bytes per element.
    pub fn bytes(self) -> usize {
        match self {
            DType::F32 | DType::I32 => 4,
            DType::I8 => 1,
        }
    }

    /// Short lowercase name (`"f32"`, `"i8"`, `"i32"`).
    pub fn name(self) -> &'static str {
        match self {
            DType::F32 => "f32",
            DType::I8 => "i8",
            DType::I32 => "i32",
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Affine quantization parameters: `real = (q - zero_point) * scale`.
///
/// Produced per tensor by [`crate::transform::quantize_dynamic_into`];
/// `zero_point` is always chosen in `[-127, 127]` so the real value `0.0`
/// (zero padding, ReLU floors) is exactly representable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// Real-value step between adjacent quantized codes.
    pub scale: f32,
    /// Quantized code representing real `0.0`.
    pub zero_point: i32,
}

impl QuantParams {
    /// The do-nothing parameters (`scale = 1`, `zero_point = 0`) carried
    /// by non-quantized tensors.
    pub const IDENTITY: QuantParams = QuantParams { scale: 1.0, zero_point: 0 };

    /// Parameters covering `[min, max]` with the real value `0.0` exactly
    /// representable (the range is widened to include 0 if necessary).
    /// Codes span `[-127, 127]`; `-128` is never produced, so symmetric
    /// negation can never overflow.
    pub fn from_range(min: f32, max: f32) -> QuantParams {
        let lo = min.min(0.0);
        let hi = max.max(0.0);
        if hi - lo <= f32::MIN_POSITIVE {
            return QuantParams::IDENTITY;
        }
        let scale = (hi - lo) / 254.0;
        let zero_point = (-lo / scale).round() as i32 - 127;
        QuantParams { scale, zero_point }
    }

    /// Quantizes one real value (round-to-nearest, saturating to
    /// `[-127, 127]`).
    #[inline]
    pub fn quantize(self, v: f32) -> i8 {
        ((v / self.scale).round() as i32 + self.zero_point).clamp(-127, 127) as i8
    }

    /// Dequantizes one code back to its real value.
    #[inline]
    pub fn dequantize(self, q: i8) -> f32 {
        (i32::from(q) - self.zero_point) as f32 * self.scale
    }
}

impl Default for QuantParams {
    fn default() -> Self {
        QuantParams::IDENTITY
    }
}

/// A tensor *representation*: physical layout plus element type — the node
/// type of the extended data-transformation graph and the `L_in`/`L_out`
/// vocabulary of mixed-precision primitives.
///
/// The enumerable set ([`Repr::ALL`]) is every layout at f32 plus the
/// quantized layouts the int8 kernels consume ([`Repr::I8_LAYOUTS`]);
/// `I32` never appears (it is an accumulator type, not an interchange
/// format).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Repr {
    /// Physical layout of the storage.
    pub layout: Layout,
    /// Element type of the storage.
    pub dtype: DType,
}

impl Repr {
    /// Layouts available in quantized (`i8`) form.
    pub const I8_LAYOUTS: [Layout; 2] = [Layout::Chw, Layout::Hwc];

    /// Every representation in the selection space, in a stable order:
    /// the eight f32 layouts (same order as [`Layout::ALL`]) followed by
    /// the quantized layouts.
    pub const ALL: [Repr; 10] = [
        Repr { layout: Layout::Chw, dtype: DType::F32 },
        Repr { layout: Layout::Cwh, dtype: DType::F32 },
        Repr { layout: Layout::Hcw, dtype: DType::F32 },
        Repr { layout: Layout::Hwc, dtype: DType::F32 },
        Repr { layout: Layout::Wch, dtype: DType::F32 },
        Repr { layout: Layout::Whc, dtype: DType::F32 },
        Repr { layout: Layout::Chw4, dtype: DType::F32 },
        Repr { layout: Layout::Chw8, dtype: DType::F32 },
        Repr { layout: Layout::Chw, dtype: DType::I8 },
        Repr { layout: Layout::Hwc, dtype: DType::I8 },
    ];

    /// The f32 representation of a layout.
    pub fn f32(layout: Layout) -> Repr {
        Repr { layout, dtype: DType::F32 }
    }

    /// The quantized representation of a layout.
    ///
    /// # Panics
    ///
    /// Panics if the layout has no quantized form (see
    /// [`Repr::I8_LAYOUTS`]).
    pub fn i8(layout: Layout) -> Repr {
        let r = Repr { layout, dtype: DType::I8 };
        assert!(
            Repr::I8_LAYOUTS.contains(&layout),
            "layout {layout} has no quantized representation"
        );
        r
    }

    /// Stable small integer id (index in [`Repr::ALL`]).
    ///
    /// # Panics
    ///
    /// Panics for representations outside the selection space (e.g. any
    /// `I32` repr).
    pub fn index(self) -> usize {
        Repr::ALL
            .iter()
            .position(|&r| r == self)
            .unwrap_or_else(|| panic!("{self} is not in the selection space"))
    }
}

impl fmt::Display for Repr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.dtype {
            DType::F32 => write!(f, "{}", self.layout),
            d => write!(f, "{}·{d}", self.layout),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn repr_indices_are_stable_and_unique() {
        let ids: HashSet<usize> = Repr::ALL.iter().map(|r| r.index()).collect();
        assert_eq!(ids.len(), Repr::ALL.len());
        assert_eq!(Repr::f32(Layout::Chw).index(), 0);
        assert_eq!(Repr::i8(Layout::Chw).index(), 8);
        assert_eq!(Repr::i8(Layout::Hwc).index(), 9);
    }

    #[test]
    #[should_panic(expected = "no quantized representation")]
    fn blocked_layouts_have_no_quantized_form() {
        let _ = Repr::i8(Layout::Chw8);
    }

    #[test]
    fn quant_params_round_trip_within_half_scale() {
        let p = QuantParams::from_range(-1.7, 3.2);
        for i in 0..500 {
            let v = -1.7 + (3.2 + 1.7) * (i as f32 / 499.0);
            let err = (p.dequantize(p.quantize(v)) - v).abs();
            assert!(err <= p.scale * 0.5 + 1e-6, "v={v} err={err} scale={}", p.scale);
        }
        // Real zero is exact.
        assert_eq!(p.dequantize(p.quantize(0.0)), 0.0);
    }

    #[test]
    fn degenerate_ranges_fall_back_to_identity() {
        assert_eq!(QuantParams::from_range(0.0, 0.0), QuantParams::IDENTITY);
        let p = QuantParams::from_range(5.0, 5.0);
        // Constant positive tensors still get a usable range [0, 5].
        assert!((p.dequantize(p.quantize(5.0)) - 5.0).abs() <= p.scale * 0.5);
    }

    #[test]
    fn display_marks_quantized_reprs() {
        assert_eq!(Repr::f32(Layout::Chw).to_string(), "CHW");
        assert_eq!(Repr::i8(Layout::Hwc).to_string(), "HWC·i8");
        assert_eq!(DType::I8.bytes(), 1);
        assert_eq!(DType::F32.bytes(), 4);
    }
}
