use std::fmt;
use std::sync::OnceLock;

use crate::TensorError;

/// A kernel tensor pre-quantized to symmetric per-tensor `i8`: the weight
/// half of the int8 execution path.
///
/// Weights are constant after training, so quantization happens **once**
/// (at schedule-compile time, via [`KernelTensor::quantized`]) and the
/// serving loop reads the cached codes. The scheme is symmetric
/// (`zero_point = 0`, codes in `[-127, 127]`), which keeps the GEMM
/// zero-point correction to the activation operand only.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedKernel {
    /// Quantized taps in the same `M × C × Kh × Kw` order as the source.
    pub data: Vec<i8>,
    /// Per-tensor scale: `real = q * scale`.
    pub scale: f32,
    /// Per-filter sums of the quantized taps (`M` entries): quantized
    /// convolutions fold the activation zero point out of the raw GEMM
    /// accumulator as `acc − zp · filter_sums[m]`, so the weight matrix
    /// is never rescanned at run time.
    pub filter_sums: Vec<i32>,
}

/// A 4-D convolution kernel tensor: `M` filters, each with `C` channels of
/// `kh × kw` taps, stored in `M × C × Kh × Kw` order.
///
/// The paper's optimization problem assigns layouts to the *feature map*
/// edges of the DNN graph only; kernels are constant after training, so each
/// primitive is free to repack its weights once at plan-build time. The
/// canonical storage order here is therefore fixed, and primitives that want
/// e.g. a transposed GEMM operand derive it internally.
///
/// # Example
///
/// ```
/// use pbqp_dnn_tensor::KernelTensor;
///
/// let k = KernelTensor::from_fn(2, 3, 3, 3, |m, c, i, j| (m + c + i + j) as f32);
/// assert_eq!(k.at(1, 2, 0, 1), 4.0);
/// assert_eq!(k.dims(), (2, 3, 3, 3));
/// ```
pub struct KernelTensor {
    m: usize,
    c: usize,
    kh: usize,
    kw: usize,
    data: Vec<f32>,
    /// Lazily built int8 image of the weights; invalidated by mutation.
    quant: OnceLock<QuantizedKernel>,
}

impl Clone for KernelTensor {
    fn clone(&self) -> Self {
        // The quantization cache is cheap to rebuild and rarely cloned
        // around; a fresh cell keeps Clone simple and correct.
        KernelTensor {
            m: self.m,
            c: self.c,
            kh: self.kh,
            kw: self.kw,
            data: self.data.clone(),
            quant: OnceLock::new(),
        }
    }
}

impl PartialEq for KernelTensor {
    fn eq(&self, other: &Self) -> bool {
        (self.m, self.c, self.kh, self.kw) == (other.m, other.c, other.kh, other.kw)
            && self.data == other.data
    }
}

impl KernelTensor {
    /// Creates a zero-filled kernel tensor.
    pub fn zeros(m: usize, c: usize, kh: usize, kw: usize) -> KernelTensor {
        KernelTensor { m, c, kh, kw, data: vec![0.0; m * c * kh * kw], quant: OnceLock::new() }
    }

    /// Creates a kernel tensor whose element `(m, c, i, j)` is `f(m, c, i, j)`.
    pub fn from_fn<F>(m: usize, c: usize, kh: usize, kw: usize, mut f: F) -> KernelTensor
    where
        F: FnMut(usize, usize, usize, usize) -> f32,
    {
        let mut k = KernelTensor::zeros(m, c, kh, kw);
        for mi in 0..m {
            for ci in 0..c {
                for i in 0..kh {
                    for j in 0..kw {
                        k.set(mi, ci, i, j, f(mi, ci, i, j));
                    }
                }
            }
        }
        k
    }

    /// Wraps an existing buffer in `M × C × Kh × Kw` order.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] on a wrong-sized buffer.
    pub fn from_vec(
        m: usize,
        c: usize,
        kh: usize,
        kw: usize,
        data: Vec<f32>,
    ) -> Result<KernelTensor, TensorError> {
        let expected = m * c * kh * kw;
        if data.len() != expected {
            return Err(TensorError::LengthMismatch { expected, actual: data.len() });
        }
        Ok(KernelTensor { m, c, kh, kw, data, quant: OnceLock::new() })
    }

    /// Deterministic pseudo-random kernel in `[-1, 1)` (see
    /// [`crate::Tensor::random`]).
    pub fn random(m: usize, c: usize, kh: usize, kw: usize, seed: u64) -> KernelTensor {
        let mut state = seed.wrapping_mul(0x2545_f491_4f6c_dd1d).max(1);
        KernelTensor::from_fn(m, c, kh, kw, |_, _, _, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 40) as f32 / (1u64 << 23) as f32) - 1.0
        })
    }

    /// Kernel dimensions `(m, c, kh, kw)`.
    pub fn dims(&self) -> (usize, usize, usize, usize) {
        (self.m, self.c, self.kh, self.kw)
    }

    /// Number of output feature maps `M`.
    pub fn filters(&self) -> usize {
        self.m
    }

    /// Number of input channels `C`.
    pub fn channels(&self) -> usize {
        self.c
    }

    /// Kernel height.
    pub fn kernel_h(&self) -> usize {
        self.kh
    }

    /// Kernel width.
    pub fn kernel_w(&self) -> usize {
        self.kw
    }

    /// Raw storage in `M × C × Kh × Kw` order.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Linear offset of `(m, c, i, j)`.
    #[inline]
    pub fn offset(&self, m: usize, c: usize, i: usize, j: usize) -> usize {
        debug_assert!(m < self.m && c < self.c && i < self.kh && j < self.kw);
        ((m * self.c + c) * self.kh + i) * self.kw + j
    }

    /// Element at `(m, c, i, j)`.
    #[inline]
    pub fn at(&self, m: usize, c: usize, i: usize, j: usize) -> f32 {
        self.data[self.offset(m, c, i, j)]
    }

    /// Stores `v` at `(m, c, i, j)`.
    #[inline]
    pub fn set(&mut self, m: usize, c: usize, i: usize, j: usize, v: f32) {
        let off = self.offset(m, c, i, j);
        self.data[off] = v;
        self.quant = OnceLock::new();
    }

    /// The int8 image of these weights: symmetric per-tensor quantization,
    /// built on first use and cached (weights are constant after
    /// training, §3.1 — so the runtime pre-quantizes at schedule-compile
    /// time and the serving loop never touches the f32 taps).
    pub fn quantized(&self) -> &QuantizedKernel {
        self.quant.get_or_init(|| {
            let maxabs = self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let scale = if maxabs > 0.0 { maxabs / 127.0 } else { 1.0 };
            let data: Vec<i8> =
                self.data.iter().map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8).collect();
            let per_filter = self.c * self.kh * self.kw;
            let filter_sums = data
                .chunks(per_filter.max(1))
                .map(|taps| taps.iter().map(|&q| i32::from(q)).sum())
                .collect();
            QuantizedKernel { data, scale, filter_sums }
        })
    }

    /// Seeds the quantization cache with a previously computed image —
    /// the deserialization half of the shippable-artifact story: a
    /// compiled model carries its pre-quantized weights, and loading it
    /// restores them here so the serving host never rescans the f32 taps.
    ///
    /// The image must be exactly what [`KernelTensor::quantized`] would
    /// compute (quantization is deterministic, so any artifact produced
    /// by `quantized()` qualifies). If a cache is already present the
    /// call is a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when the image's tap count
    /// or filter-sum count disagrees with this kernel's dimensions.
    pub fn restore_quantized(&self, q: QuantizedKernel) -> Result<(), TensorError> {
        if q.data.len() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: self.data.len(),
                actual: q.data.len(),
            });
        }
        if q.filter_sums.len() != self.m {
            return Err(TensorError::LengthMismatch {
                expected: self.m,
                actual: q.filter_sums.len(),
            });
        }
        let _ = self.quant.set(q);
        Ok(())
    }

    /// Whether an int8 image is already cached (pre-quantized at compile
    /// time or restored from an artifact).
    pub fn has_quantized(&self) -> bool {
        self.quant.get().is_some()
    }

    /// Applies a sparsity mask: zeroes every weight whose deterministic hash
    /// falls below `ratio` (0 = dense, 1 = all-zero). Used by the sparse
    /// primitive extension (§8 of the paper).
    pub fn sparsify(&mut self, ratio: f64, seed: u64) {
        self.quant = OnceLock::new();
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
        for v in &mut self.data {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            if u < ratio {
                *v = 0.0;
            }
        }
    }

    /// Fraction of exactly-zero weights.
    pub fn sparsity(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let zeros = self.data.iter().filter(|&&v| v == 0.0).count();
        zeros as f64 / self.data.len() as f64
    }
}

impl fmt::Debug for KernelTensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KernelTensor")
            .field("m", &self.m)
            .field("c", &self.c)
            .field("kh", &self.kh)
            .field("kw", &self.kw)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_at_round_trip() {
        let mut k = KernelTensor::zeros(2, 3, 2, 2);
        k.set(1, 2, 1, 0, 5.5);
        assert_eq!(k.at(1, 2, 1, 0), 5.5);
        assert_eq!(k.data().iter().filter(|&&v| v != 0.0).count(), 1);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(KernelTensor::from_vec(2, 2, 3, 3, vec![0.0; 36]).is_ok());
        assert!(KernelTensor::from_vec(2, 2, 3, 3, vec![0.0; 35]).is_err());
    }

    #[test]
    fn sparsify_hits_requested_ratio_approximately() {
        let mut k = KernelTensor::random(8, 8, 3, 3, 7);
        assert_eq!(k.sparsity(), 0.0);
        k.sparsify(0.5, 99);
        let s = k.sparsity();
        assert!((0.4..0.6).contains(&s), "sparsity {s}");
    }

    #[test]
    fn random_is_deterministic() {
        let a = KernelTensor::random(2, 2, 3, 3, 11);
        let b = KernelTensor::random(2, 2, 3, 3, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn quantized_weights_reconstruct_within_half_step() {
        let k = KernelTensor::random(3, 4, 3, 3, 5);
        let q = k.quantized();
        assert_eq!(q.data.len(), k.data().len());
        assert_eq!(q.filter_sums.len(), 3);
        for (&code, &real) in q.data.iter().zip(k.data()) {
            let back = f32::from(code) * q.scale;
            assert!((back - real).abs() <= q.scale / 2.0 + 1e-6);
        }
        // Filter sums match a direct recomputation.
        let per = 4 * 3 * 3;
        for (m, &sum) in q.filter_sums.iter().enumerate() {
            let want: i32 = q.data[m * per..(m + 1) * per].iter().map(|&c| i32::from(c)).sum();
            assert_eq!(sum, want);
        }
    }

    #[test]
    fn quantization_cache_invalidates_on_mutation() {
        let mut k = KernelTensor::random(1, 1, 2, 2, 3);
        let before = k.quantized().clone();
        k.set(0, 0, 0, 0, 100.0);
        let after = k.quantized();
        assert_ne!(before.scale, after.scale);
        // All-zero kernels quantize with a benign scale.
        let z = KernelTensor::zeros(1, 1, 1, 1);
        assert_eq!(z.quantized().scale, 1.0);
        assert_eq!(z.quantized().data, vec![0]);
    }
}
