//! A tiny deterministic pseudo-random generator for tests and examples.
//!
//! The build environment has no crates.io access, so the workspace's
//! property tests cannot use `proptest`; instead they draw their cases
//! from this fixed-seed splitmix64 generator. It lives here — in the
//! bottom crate of the workspace — so every other crate can share one
//! copy through a dev-dependency.
//!
//! Not a statistical-quality or cryptographic RNG; `usize` uses a plain
//! modulo reduction (negligible bias for the small test ranges it
//! serves).

/// Deterministic splitmix64 sequence.
///
/// # Example
///
/// ```
/// use pbqp_dnn_tensor::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.usize(3, 10);
/// assert!((3..10).contains(&x));
/// let f = a.f32(-1.0, 1.0);
/// assert!((-1.0..1.0).contains(&f));
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Creates a generator from a seed; equal seeds yield equal streams.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// The next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`. Panics if the range is empty.
    pub fn usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + (self.next_u64() as usize) % (hi - lo)
    }

    /// Uniform in `[lo, hi)` from the top 24 bits.
    pub fn f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + ((self.next_u64() >> 40) as f32 / (1u64 << 24) as f32) * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_ranged() {
        let mut r = SplitMix64::new(123);
        let vals: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut r2 = SplitMix64::new(123);
        assert_eq!(vals, (0..4).map(|_| r2.next_u64()).collect::<Vec<_>>());
        for _ in 0..100 {
            assert!((5..9).contains(&r.usize(5, 9)));
            let f = r.f32(2.0, 3.0);
            assert!((2.0..3.0).contains(&f));
        }
    }
}
