//! Property tests for the tensor substrate: layout round trips, storage
//! bijectivity, and direct-transform equivalence with the generic copy.

use proptest::prelude::*;

use pbqp_dnn_tensor::transform::{apply_direct, DIRECT_TRANSFORMS};
use pbqp_dnn_tensor::{Layout, Tensor};

fn layout_strategy() -> impl Strategy<Value = Layout> {
    prop::sample::select(Layout::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Converting to any layout and back preserves every element.
    #[test]
    fn to_layout_round_trips(
        c in 1usize..12,
        h in 1usize..12,
        w in 1usize..12,
        a in layout_strategy(),
        b in layout_strategy(),
        seed in 0u64..u64::MAX,
    ) {
        let t = Tensor::random(c, h, w, a, seed);
        let back = t.to_layout(b).to_layout(a);
        prop_assert_eq!(t.data(), back.data());
    }

    /// `set` followed by `at` returns the stored value in every layout,
    /// and touches exactly one storage slot.
    #[test]
    fn set_at_is_a_bijection_into_storage(
        c in 1usize..10,
        h in 1usize..10,
        w in 1usize..10,
        layout in layout_strategy(),
        ci in 0usize..10,
        hi in 0usize..10,
        wi in 0usize..10,
    ) {
        let (ci, hi, wi) = (ci % c, hi % h, wi % w);
        let mut t = Tensor::zeros(c, h, w, layout);
        t.set(ci, hi, wi, 7.5);
        prop_assert_eq!(t.at(ci, hi, wi), 7.5);
        let nonzero = t.data().iter().filter(|&&v| v != 0.0).count();
        prop_assert_eq!(nonzero, 1);
    }

    /// Every registered direct transform equals the generic permutation
    /// copy on random tensors.
    #[test]
    fn direct_transforms_match_generic_copy(
        c in 1usize..10,
        h in 1usize..10,
        w in 1usize..10,
        ix in 0usize..DIRECT_TRANSFORMS.len(),
        seed in 0u64..u64::MAX,
    ) {
        let tr = DIRECT_TRANSFORMS[ix];
        let src = Tensor::random(c, h, w, tr.from, seed);
        let fast = apply_direct(&src, tr.to).unwrap();
        let slow = src.to_layout(tr.to);
        prop_assert_eq!(fast.data(), slow.data(), "{}", tr.name);
    }

    /// Checksums are layout-invariant.
    #[test]
    fn checksum_is_layout_invariant(
        c in 1usize..8,
        h in 1usize..8,
        w in 1usize..8,
        a in layout_strategy(),
        b in layout_strategy(),
        seed in 0u64..u64::MAX,
    ) {
        let t = Tensor::random(c, h, w, a, seed);
        let u = t.to_layout(b);
        prop_assert!((t.checksum() - u.checksum()).abs() < 1e-3);
    }
}
