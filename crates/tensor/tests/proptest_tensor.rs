//! Property tests for the tensor substrate: layout round trips, storage
//! bijectivity, and direct-transform equivalence with the generic copy.
//!
//! The build environment has no crates.io access, so instead of proptest
//! each test derives its random cases from a fixed-seed splitmix64
//! generator — deterministic, but covering the same input space.

use pbqp_dnn_tensor::rng::SplitMix64;
use pbqp_dnn_tensor::transform::{apply_direct, DIRECT_TRANSFORMS};
use pbqp_dnn_tensor::{Layout, Tensor};

fn layout(rng: &mut SplitMix64) -> Layout {
    Layout::ALL[rng.usize(0, Layout::ALL.len())]
}

/// Converting to any layout and back preserves every element.
#[test]
fn to_layout_round_trips() {
    let mut rng = SplitMix64::new(1);
    for _ in 0..64 {
        let (c, h, w) = (rng.usize(1, 12), rng.usize(1, 12), rng.usize(1, 12));
        let (a, b) = (layout(&mut rng), layout(&mut rng));
        let t = Tensor::random(c, h, w, a, rng.next_u64());
        let back = t.to_layout(b).to_layout(a);
        assert_eq!(t.data(), back.data(), "{a} -> {b} -> {a}");
    }
}

/// `set` followed by `at` returns the stored value in every layout, and
/// touches exactly one storage slot.
#[test]
fn set_at_is_a_bijection_into_storage() {
    let mut rng = SplitMix64::new(2);
    for _ in 0..64 {
        let (c, h, w) = (rng.usize(1, 10), rng.usize(1, 10), rng.usize(1, 10));
        let layout = layout(&mut rng);
        let (ci, hi, wi) = (rng.usize(0, c), rng.usize(0, h), rng.usize(0, w));
        let mut t = Tensor::zeros(c, h, w, layout);
        t.set(ci, hi, wi, 7.5);
        assert_eq!(t.at(ci, hi, wi), 7.5);
        let nonzero = t.data().iter().filter(|&&v| v != 0.0).count();
        assert_eq!(nonzero, 1, "{layout} ({ci},{hi},{wi})");
    }
}

/// Every registered direct transform equals the generic permutation copy
/// on random tensors.
#[test]
fn direct_transforms_match_generic_copy() {
    let mut rng = SplitMix64::new(3);
    for _ in 0..64 {
        let (c, h, w) = (rng.usize(1, 10), rng.usize(1, 10), rng.usize(1, 10));
        let tr = DIRECT_TRANSFORMS[rng.usize(0, DIRECT_TRANSFORMS.len())];
        let src = Tensor::random(c, h, w, tr.from, rng.next_u64());
        let fast = apply_direct(&src, tr.to).unwrap();
        let slow = src.to_layout(tr.to);
        assert_eq!(fast.data(), slow.data(), "{}", tr.name);
    }
}

/// Checksums are layout-invariant.
#[test]
fn checksum_is_layout_invariant() {
    let mut rng = SplitMix64::new(4);
    for _ in 0..64 {
        let (c, h, w) = (rng.usize(1, 8), rng.usize(1, 8), rng.usize(1, 8));
        let (a, b) = (layout(&mut rng), layout(&mut rng));
        let t = Tensor::random(c, h, w, a, rng.next_u64());
        let u = t.to_layout(b);
        assert!((t.checksum() - u.checksum()).abs() < 1e-3);
    }
}
