//! Front door for the PBQP-DNN workspace — a reproduction of Anderson &
//! Gregg, *Optimal DNN Primitive Selection with Partitioned Boolean
//! Quadratic Programming* (CGO 2018) — grown into a parallel batched
//! execution engine.
//!
//! This facade crate re-exports every workspace crate under one name so
//! downstream users (and the integration tests in `tests/`) can depend on
//! a single package. The layering, bottom to top:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`tensor`] | `pbqp-dnn-tensor` | dtype-generic tensors (`f32`/`i8`/`i32`) + data layouts |
//! | [`fft`] | `pbqp-dnn-fft` | radix-2 / Bluestein FFTs |
//! | [`gemm`] | `pbqp-dnn-gemm` | blocked / packed SGEMM kernels |
//! | [`solver`] | `pbqp-solver` | exact branch-and-bound PBQP solver |
//! | [`graph`] | `pbqp-dnn-graph` | DNN graph IR + model zoo |
//! | [`primitives`] | `pbqp-dnn-primitives` | the 70+ convolution primitives |
//! | [`cost`] | `pbqp-dnn-cost` | analytic / measured cost sources |
//! | [`select`] | `pbqp-dnn-select` | PBQP instance, strategies, plan cache |
//! | [`runtime`] | `pbqp-dnn-runtime` | serial / wavefront / batched executor |
//!
//! See the workspace `README.md` for the paper-section map and quickstart.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pbqp_dnn_bench as bench;
pub use pbqp_dnn_cost as cost;
pub use pbqp_dnn_fft as fft;
pub use pbqp_dnn_gemm as gemm;
pub use pbqp_dnn_graph as graph;
pub use pbqp_dnn_primitives as primitives;
pub use pbqp_dnn_runtime as runtime;
pub use pbqp_dnn_select as select;
pub use pbqp_dnn_tensor as tensor;
pub use pbqp_solver as solver;
