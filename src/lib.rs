//! One front door for the PBQP-DNN system — a reproduction of Anderson &
//! Gregg, *Optimal DNN Primitive Selection with Partitioned Boolean
//! Quadratic Programming* (CGO 2018) — grown into a compile → ship →
//! serve lifecycle.
//!
//! The paper's pitch is "solve once, run the optimal plan forever". The
//! front door makes that the API:
//!
//! * a [`Compiler`] (configured by [`CompileOptions`]: machine model,
//!   cost source, strategy, primitive library including mixed precision,
//!   parallelism) takes a [`graph::DnnGraph`] + [`runtime::Weights`] and
//!   produces a [`CompiledModel`] — plan, activation memory plan,
//!   pre-quantized weight images, output-conversion chains, fingerprint;
//! * the [`CompiledModel`] ships between machines via
//!   [`CompiledModel::save`] / [`CompiledModel::load`] — a versioned,
//!   fingerprint-validated binary format, so a plan solved on a big
//!   build host serves on an edge deployment;
//! * an [`Engine`] (shared, immutable, `Sync`) hands out per-thread
//!   [`Session`]s, each owning its buffers — warmed
//!   [`Session::infer`](serve::Session::infer) performs **zero heap
//!   allocations** per request;
//! * the engine is **fault-contained**: a panicking kernel is caught,
//!   served through the bit-exact reference path, quarantined and
//!   re-planned around — [`Engine::health`] reports the vitals, and the
//!   [`faults`] failpoint module injects panics/errors/delays/short
//!   reads for chaos testing (`PBQP_DNN_FAILPOINTS` env var);
//! * the engine **re-optimizes online**:
//!   [`Engine::enable_autotune`](serve::Engine::enable_autotune) samples
//!   live per-step kernel latencies (one relaxed atomic load per step
//!   while off), folds them into an observed-cost table, re-solves the
//!   PBQP selection on a background thread when reality diverges from
//!   the plan's predictions, and hot-swaps validated improvements
//!   through the same generation-counted serving state.
//!
//! ```
//! use pbqp_dnn::prelude::*;
//!
//! # fn main() -> Result<(), Error> {
//! let net = models::micro_alexnet();
//! let weights = Weights::random(&net, 42);
//! let model = Compiler::new(CompileOptions::new()).compile(&net, &weights)?;   // 1. compile
//! let mut bytes = Vec::new();
//! model.save(&mut bytes)?;                                                     // 2. ship
//! let mut session = CompiledModel::load(&mut bytes.as_slice())?.engine().session(); // 3. serve
//! let (c, h, w) = net.infer_shapes()?[0];
//! let out = session.infer_new(&Tensor::random(c, h, w, Layout::Chw, 7))?;
//! # let _ = out;
//! # Ok(())
//! # }
//! ```
//!
//! The per-crate APIs stay public for power users (custom DT graphs,
//! hand-built plans, direct [`runtime::Executor`] use), re-exported
//! under one name. The layering, bottom to top:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`tensor`] | `pbqp-dnn-tensor` | dtype-generic tensors (`f32`/`i8`/`i32`), layouts, wire codecs |
//! | [`fft`] | `pbqp-dnn-fft` | radix-2 / Bluestein FFTs |
//! | [`gemm`] | `pbqp-dnn-gemm` | blocked / packed SGEMM + int8 GEMM kernels |
//! | [`solver`] | `pbqp-solver` | exact branch-and-bound PBQP solver |
//! | [`graph`] | `pbqp-dnn-graph` | DNN graph IR + model zoo |
//! | [`primitives`] | `pbqp-dnn-primitives` | the 70+ convolution primitives |
//! | [`cost`] | `pbqp-dnn-cost` | analytic / measured cost sources |
//! | [`select`] | `pbqp-dnn-select` | PBQP instance, strategies, plan cache, plan wire format |
//! | [`runtime`] | `pbqp-dnn-runtime` | owned execution schedules, serial / wavefront / batched executor, live sampler |
//! | [`autotune`] | `pbqp-dnn-autotune` | online re-optimization: observed costs, background re-solve, swap policy |
//!
//! See the workspace `README.md` for the paper-section map and quickstart.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod compile;
pub mod error;
pub mod prelude;
pub mod serve;

pub use artifact::{ArtifactError, CompiledModel, FORMAT_VERSION, MAGIC};
pub use compile::{CompileOptions, Compiler, CostModel, PrimitiveLibrary};
pub use error::Error;
pub use serve::{Engine, Health, Session};

pub use pbqp_dnn_autotune::{AutotuneConfig, CandidateFill};
pub use pbqp_dnn_runtime::faults;

pub use pbqp_dnn_autotune as autotune;
pub use pbqp_dnn_cost as cost;
pub use pbqp_dnn_fft as fft;
pub use pbqp_dnn_gemm as gemm;
pub use pbqp_dnn_graph as graph;
pub use pbqp_dnn_primitives as primitives;
pub use pbqp_dnn_runtime as runtime;
pub use pbqp_dnn_select as select;
pub use pbqp_dnn_tensor as tensor;
pub use pbqp_solver as solver;
