//! The unified front-door error type.
//!
//! Every workspace crate defines its own error enum — graphs, planning,
//! execution, tensors — which is right for the low-level APIs but forced
//! every example into `Box<dyn Error>`. The front door returns one
//! [`Error`] that wraps them all with `From` impls, so `?` composes
//! across the whole compile → serve lifecycle and callers can still
//! match on the underlying cause (or walk [`std::error::Error::source`]).

use std::fmt;

use pbqp_dnn_graph::GraphError;
use pbqp_dnn_runtime::RuntimeError;
use pbqp_dnn_select::PlanError;
use pbqp_dnn_tensor::TensorError;

use crate::artifact::ArtifactError;

/// Any failure in the front-door compile → save/load → serve lifecycle.
#[derive(Debug)]
pub enum Error {
    /// The DNN graph is structurally invalid (cycles, arity, shapes).
    Graph(GraphError),
    /// Planning failed (infeasible PBQP instance, no legalization chain).
    Plan(PlanError),
    /// Schedule compilation or execution failed (unknown primitive,
    /// missing weights, bad input).
    Runtime(RuntimeError),
    /// A tensor operation failed (layout conversion, shape mismatch).
    Tensor(TensorError),
    /// A compiled-model artifact could not be decoded or validated.
    Artifact(ArtifactError),
    /// An I/O error while reading or writing an artifact stream.
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Graph(e) => write!(f, "graph error: {e}"),
            Error::Plan(e) => write!(f, "planning error: {e}"),
            Error::Runtime(e) => write!(f, "runtime error: {e}"),
            Error::Tensor(e) => write!(f, "tensor error: {e}"),
            Error::Artifact(e) => write!(f, "artifact error: {e}"),
            Error::Io(e) => write!(f, "artifact I/O error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Graph(e) => Some(e),
            Error::Plan(e) => Some(e),
            Error::Runtime(e) => Some(e),
            Error::Tensor(e) => Some(e),
            Error::Artifact(e) => Some(e),
            Error::Io(e) => Some(e),
        }
    }
}

impl From<GraphError> for Error {
    fn from(e: GraphError) -> Self {
        Error::Graph(e)
    }
}

impl From<PlanError> for Error {
    fn from(e: PlanError) -> Self {
        Error::Plan(e)
    }
}

impl From<RuntimeError> for Error {
    fn from(e: RuntimeError) -> Self {
        Error::Runtime(e)
    }
}

impl From<TensorError> for Error {
    fn from(e: TensorError) -> Self {
        Error::Tensor(e)
    }
}

impl From<ArtifactError> for Error {
    fn from(e: ArtifactError) -> Self {
        Error::Artifact(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn wrapping_preserves_the_source_chain() {
        let e: Error = GraphError::Cyclic.into();
        assert!(matches!(e, Error::Graph(GraphError::Cyclic)));
        assert!(e.source().unwrap().to_string().contains("cyclic"));
        assert!(e.to_string().contains("graph error"));

        let e: Error = TensorError::ShapeMismatch { left: (1, 1, 1), right: (2, 2, 2) }.into();
        assert!(e.to_string().contains("shape mismatch"));

        let e: Error = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof").into();
        assert!(matches!(e, Error::Io(_)));
    }
}
