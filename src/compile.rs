//! The front-door compiler: one configured object that turns a
//! [`DnnGraph`] + [`Weights`] into a self-contained [`CompiledModel`].
//!
//! The paper's pitch is "solve once, run the optimal plan forever" — so
//! the compile step owns everything that used to be hand-wired per
//! caller: the primitive library, the cost source, the PBQP strategy,
//! legalization, schedule compilation (activation memory plan, workspace
//! sizing, weight pre-quantization) and a plan cache keyed by the
//! artifact fingerprint, so recompiling a known model skips the solve.

use std::sync::Arc;

use pbqp_dnn_cost::{AnalyticCost, CostSource, MachineModel, MeasuredCost};
use pbqp_dnn_graph::DnnGraph;
use pbqp_dnn_primitives::registry::{full_library, mixed_precision_library, Registry};
use pbqp_dnn_runtime::{Parallelism, Weights};
use pbqp_dnn_select::{artifact_fingerprint, ExecutionPlan, Optimizer, PlanCache, Strategy};

use crate::artifact::CompiledModel;
use crate::Error;

/// Which primitive library the compiler selects from — the only
/// artifact-relevant registry identity, so it is what ships in the
/// compiled model's header (the serving host rebuilds the registry from
/// this tag; the plan then names concrete primitives inside it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrimitiveLibrary {
    /// The full f32 library (70+ routines) — the paper's inventory.
    F32,
    /// [`PrimitiveLibrary::F32`] plus the int8 quantized primitives: the
    /// mixed-precision selection space of PR 3.
    MixedPrecision,
}

impl PrimitiveLibrary {
    /// Builds the registry this tag names.
    pub fn registry(self) -> Registry {
        match self {
            PrimitiveLibrary::F32 => Registry::new(full_library()),
            PrimitiveLibrary::MixedPrecision => Registry::new(mixed_precision_library()),
        }
    }

    /// Stable cache/artifact key.
    pub fn key(self) -> &'static str {
        match self {
            PrimitiveLibrary::F32 => "f32-full",
            PrimitiveLibrary::MixedPrecision => "mixed-precision",
        }
    }

    /// Stable wire code.
    pub(crate) fn code(self) -> u8 {
        match self {
            PrimitiveLibrary::F32 => 0,
            PrimitiveLibrary::MixedPrecision => 1,
        }
    }

    /// Inverse of [`PrimitiveLibrary::code`].
    pub(crate) fn from_code(code: u8) -> Option<PrimitiveLibrary> {
        match code {
            0 => Some(PrimitiveLibrary::F32),
            1 => Some(PrimitiveLibrary::MixedPrecision),
            _ => None,
        }
    }
}

/// Where layer and transformation costs come from during compilation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostModel {
    /// The deterministic analytic machine model (default): pure function
    /// of the [`MachineModel`], so plans are reproducible and cacheable.
    Analytic,
    /// Wall-clock profiling on the build host (the paper's methodology).
    /// Not a pure function, so compiles bypass the plan cache.
    Measured {
        /// Timing repetitions per candidate (minimum kept).
        reps: usize,
        /// Integer spatial downscale for quick calibration runs (≥ 1).
        scale: usize,
    },
}

/// Builder-style configuration for a [`Compiler`]: target machine model,
/// cost source, selection strategy, primitive library (including mixed
/// precision), serving parallelism and the cost model's thread budget.
///
/// # Example
///
/// ```
/// use pbqp_dnn::{CompileOptions, CostModel};
/// use pbqp_dnn::cost::MachineModel;
/// use pbqp_dnn::runtime::Parallelism;
/// use pbqp_dnn::select::Strategy;
///
/// let options = CompileOptions::new()
///     .machine(MachineModel::arm_a57_like())
///     .threads(4)
///     .strategy(Strategy::Pbqp)
///     .mixed_precision(true)
///     .parallelism(Parallelism::serial());
/// assert_eq!(options.cost_model(), CostModel::Analytic);
/// ```
#[derive(Debug, Clone)]
pub struct CompileOptions {
    machine: MachineModel,
    threads: usize,
    strategy: Strategy,
    library: PrimitiveLibrary,
    parallelism: Parallelism,
    cost: CostModel,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions::new()
    }
}

impl CompileOptions {
    /// The defaults: Haswell-like machine model, 1 cost-model thread,
    /// exact PBQP strategy, f32 library, serial serving parallelism,
    /// analytic costs.
    pub fn new() -> CompileOptions {
        CompileOptions {
            machine: MachineModel::intel_haswell_like(),
            threads: 1,
            strategy: Strategy::Pbqp,
            library: PrimitiveLibrary::F32,
            parallelism: Parallelism::serial(),
            cost: CostModel::Analytic,
        }
    }

    /// Replaces the target machine model costs are computed for.
    pub fn machine(mut self, machine: MachineModel) -> CompileOptions {
        self.machine = machine;
        self
    }

    /// Replaces the cost model's thread budget (how many intra-op threads
    /// the deployed primitives are priced at; clamped to ≥ 1).
    pub fn threads(mut self, threads: usize) -> CompileOptions {
        self.threads = threads.max(1);
        self
    }

    /// Replaces the selection strategy (default: exact PBQP).
    pub fn strategy(mut self, strategy: Strategy) -> CompileOptions {
        self.strategy = strategy;
        self
    }

    /// Selects between the f32 library and the mixed-precision superset
    /// with the int8 primitives and quantize/dequantize edges.
    pub fn mixed_precision(mut self, enabled: bool) -> CompileOptions {
        self.library =
            if enabled { PrimitiveLibrary::MixedPrecision } else { PrimitiveLibrary::F32 };
        self
    }

    /// Replaces the default serving parallelism baked into the compiled
    /// model (sessions can override it per thread).
    pub fn parallelism(mut self, parallelism: Parallelism) -> CompileOptions {
        self.parallelism = parallelism;
        self
    }

    /// Switches to wall-clock profiled costs (the paper's methodology);
    /// such compiles bypass the plan cache.
    pub fn measured_costs(mut self, reps: usize, scale: usize) -> CompileOptions {
        self.cost = CostModel::Measured { reps: reps.max(1), scale: scale.max(1) };
        self
    }

    /// The configured cost model.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// The configured primitive library.
    pub fn library(&self) -> PrimitiveLibrary {
        self.library
    }

    /// The configured selection strategy.
    pub fn strategy_choice(&self) -> Strategy {
        self.strategy
    }

    /// The configured machine model.
    pub fn machine_model(&self) -> &MachineModel {
        &self.machine
    }
}

/// The front door's compile stage: owns a [`CompileOptions`] and a
/// fingerprint-keyed [`PlanCache`], and turns (graph, weights) pairs into
/// self-contained [`CompiledModel`]s.
///
/// # Example
///
/// ```
/// use pbqp_dnn::prelude::*;
///
/// let net = models::micro_alexnet();
/// let weights = Weights::random(&net, 42);
/// let compiler = Compiler::new(CompileOptions::new());
/// let model = compiler.compile(&net, &weights).unwrap();
/// assert!(model.plan().predicted_us > 0.0);
/// // Recompiling the same model is a cache hit — no second solve.
/// let again = compiler.compile(&net, &weights).unwrap();
/// assert_eq!(again.fingerprint(), model.fingerprint());
/// assert_eq!(compiler.cache_stats(), (1, 1));
/// ```
#[derive(Debug, Default)]
pub struct Compiler {
    options: CompileOptions,
    cache: PlanCache,
}

impl Compiler {
    /// Creates a compiler with the given options and an empty plan cache.
    pub fn new(options: CompileOptions) -> Compiler {
        Compiler { options, cache: PlanCache::new() }
    }

    /// The options this compiler was configured with.
    pub fn options(&self) -> &CompileOptions {
        &self.options
    }

    /// Plan-cache `(hits, misses)` so far.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache.hits(), self.cache.misses())
    }

    /// Compiles `graph` + `weights` into a self-contained
    /// [`CompiledModel`]: profiles (or models) every candidate, solves
    /// the selection under the configured strategy, legalizes the
    /// winning assignment, compiles the execution schedule (activation
    /// memory plan, workspace sizing) and pre-quantizes the weights of
    /// every int8-assigned layer.
    ///
    /// Analytic-cost compiles are memoized by artifact fingerprint:
    /// compiling the same (graph, strategy, machine, library) again
    /// reuses the cached plan and skips the solve.
    ///
    /// # Errors
    ///
    /// [`Error::Graph`] for malformed graphs, [`Error::Plan`] for
    /// infeasible selections, [`Error::Runtime`] when the weights do not
    /// cover the graph's parameterized layers.
    pub fn compile(&self, graph: &DnnGraph, weights: &Weights) -> Result<CompiledModel, Error> {
        // Validate the graph before doing any expensive work.
        graph.infer_shapes()?;
        let options = &self.options;
        let source: Box<dyn CostSource> = match options.cost {
            CostModel::Analytic => {
                Box::new(AnalyticCost::new(options.machine.clone(), options.threads))
            }
            CostModel::Measured { reps, scale } => {
                Box::new(MeasuredCost::new(options.threads, reps).with_scale(scale))
            }
        };
        let fingerprint = artifact_fingerprint(
            graph,
            options.strategy,
            &source.cache_key(),
            options.library.key(),
        );
        let registry = Arc::new(options.library.registry());
        let solve = || Optimizer::new(&registry, source.as_ref()).plan(graph, options.strategy);
        let (plan, fingerprint): (Arc<ExecutionPlan>, u64) = match options.cost {
            // Analytic costs are a pure function of the fingerprint's
            // inputs; profiled costs are wall-clock and never memoized.
            CostModel::Analytic => {
                (self.cache.plan_by_fingerprint(fingerprint, solve)?, fingerprint)
            }
            CostModel::Measured { .. } => {
                // A measured compile is *not* a pure function of the
                // inputs — two profiling runs of the same graph can pick
                // different primitives — so the concrete plan bytes are
                // folded into the fingerprint to keep the documented
                // invariant (same fingerprint ⇒ same plan).
                let plan = Arc::new(solve()?);
                let mut bytes = Vec::new();
                pbqp_dnn_select::wire::put_plan(&mut bytes, &plan);
                use std::hash::Hasher;
                let mut h = pbqp_dnn_graph::Fnv1a::default();
                h.write_u64(fingerprint);
                h.write(&bytes);
                (plan, h.finish())
            }
        };
        CompiledModel::assemble(
            Arc::new(graph.clone()),
            plan,
            Arc::new(weights.clone()),
            registry,
            options.library,
            options.parallelism,
            fingerprint,
        )
    }
}
