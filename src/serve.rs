//! The serving layer: a shared [`Engine`] handing out per-thread
//! [`Session`]s.
//!
//! The split mirrors the runtime's schedule/buffers design: the engine
//! holds the immutable compiled state (schedule, plan, graph — all
//! `Sync`, all behind [`Arc`]s), and each session owns the one piece of
//! per-caller mutable state, its
//! [`ExecBuffers`]. A serving process
//! clones one engine into every worker thread, gives each a session, and
//! after each session's first (warmup) request the steady-state loop
//! performs **zero heap allocations** per inference — the PR 2 contract,
//! preserved behind the front door and enforced by
//! `tests/steady_state_alloc.rs`.

use std::sync::Arc;

use pbqp_dnn_graph::DnnGraph;
use pbqp_dnn_runtime::{ExecBuffers, Parallelism, Schedule};
use pbqp_dnn_select::ExecutionPlan;
use pbqp_dnn_tensor::Tensor;

use crate::artifact::CompiledModel;
use crate::Error;

/// A shared, immutable serving engine for one compiled model.
///
/// `Engine` is `Clone + Send + Sync`: hand one to every worker thread
/// (or wrap one in an `Arc` — cloning is a few reference-count bumps
/// either way) and create a [`Session`] per thread with
/// [`Engine::session`].
///
/// # Example
///
/// ```
/// use pbqp_dnn::prelude::*;
///
/// let net = models::micro_alexnet();
/// let weights = Weights::random(&net, 42);
/// let model = Compiler::new(CompileOptions::new()).compile(&net, &weights).unwrap();
/// let engine = model.engine();
///
/// let (c, h, w) = net.infer_shapes().unwrap()[0];
/// let inputs: Vec<Tensor> =
///     (0..4).map(|i| Tensor::random(c, h, w, Layout::Chw, 10 + i)).collect();
///
/// // Serve from two threads, one session each; results match the
/// // engine's one-shot API bit-for-bit.
/// let outputs: Vec<Tensor> = std::thread::scope(|scope| {
///     inputs
///         .chunks(2)
///         .map(|chunk| {
///             let engine = engine.clone();
///             scope.spawn(move || {
///                 let mut session = engine.session();
///                 chunk.iter().map(|x| session.infer_new(x).unwrap()).collect::<Vec<_>>()
///             })
///         })
///         .collect::<Vec<_>>()
///         .into_iter()
///         .flat_map(|h| h.join().unwrap())
///         .collect()
/// });
/// for (input, out) in inputs.iter().zip(&outputs) {
///     assert_eq!(engine.infer(input).unwrap().data(), out.data());
/// }
/// ```
#[derive(Clone)]
pub struct Engine {
    schedule: Arc<Schedule>,
    graph: Arc<DnnGraph>,
    plan: Arc<ExecutionPlan>,
    parallelism: Parallelism,
}

impl Engine {
    /// Builds an engine sharing a compiled model's state.
    pub(crate) fn from_model(model: &CompiledModel) -> Engine {
        let (schedule, graph, plan) = model.serving_parts();
        Engine { schedule, graph, plan, parallelism: model.parallelism() }
    }

    /// A new session owning its own warm-up-once buffer set, inheriting
    /// the engine's parallelism.
    pub fn session(&self) -> Session {
        Session {
            schedule: Arc::clone(&self.schedule),
            parallelism: self.parallelism,
            bufs: self.schedule.make_buffers(),
        }
    }

    /// One-shot convenience inference: builds a transient session and an
    /// output tensor per call. Use [`Engine::session`] for the
    /// allocation-free steady-state loop.
    ///
    /// # Errors
    ///
    /// Propagates execution errors (bad input shape/layout, primitive
    /// failures).
    pub fn infer(&self, input: &Tensor) -> Result<Tensor, Error> {
        self.session().infer_new(input)
    }

    /// The plan this engine executes.
    pub fn plan(&self) -> &ExecutionPlan {
        &self.plan
    }

    /// The network this engine serves.
    pub fn graph(&self) -> &DnnGraph {
        &self.graph
    }

    /// The parallelism new sessions inherit.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Returns an engine whose new sessions use `parallelism` instead of
    /// the compiled-in default.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Engine {
        self.parallelism = parallelism;
        self
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("nodes", &self.graph.len())
            .field("parallelism", &self.parallelism)
            .finish()
    }
}

/// One caller's serving handle: a shared schedule plus an owned buffer
/// set. `Session` is `Send` (move it into a worker thread) but
/// deliberately not `Sync` — one session per thread is the model.
///
/// After the first (warmup) call settles buffer capacities,
/// [`Session::infer`] and [`Session::infer_batch`] with serial
/// parallelism perform zero heap allocations per request.
pub struct Session {
    schedule: Arc<Schedule>,
    parallelism: Parallelism,
    bufs: ExecBuffers,
}

impl Session {
    /// Runs one forward pass, writing the (always f32) network output
    /// into the caller-recycled `out`.
    ///
    /// # Errors
    ///
    /// Propagates execution errors (bad input shape/layout, primitive
    /// failures).
    pub fn infer(&mut self, input: &Tensor, out: &mut Tensor) -> Result<(), Error> {
        self.schedule.run_into(input, &mut self.bufs, out, self.parallelism)?;
        Ok(())
    }

    /// [`Session::infer`] allocating a fresh output tensor.
    ///
    /// # Errors
    ///
    /// Propagates execution errors.
    pub fn infer_new(&mut self, input: &Tensor) -> Result<Tensor, Error> {
        let mut out = Tensor::empty();
        self.infer(input, &mut out)?;
        Ok(out)
    }

    /// Serves a whole batch in request order: `outs` is resized to
    /// `inputs.len()` and each slot's storage is recycled. A warmed
    /// session serves same-sized batches without heap allocations.
    ///
    /// Scaling across cores is done with one session per thread (see
    /// [`Engine`]); within a session the batch runs serially, each item
    /// under the session's [`Parallelism`].
    ///
    /// # Errors
    ///
    /// Returns the first failing item's error; earlier outputs are
    /// already written.
    pub fn infer_batch(&mut self, inputs: &[Tensor], outs: &mut Vec<Tensor>) -> Result<(), Error> {
        if outs.len() != inputs.len() {
            outs.resize_with(inputs.len(), Tensor::empty);
        }
        for (input, out) in inputs.iter().zip(outs.iter_mut()) {
            self.infer(input, out)?;
        }
        Ok(())
    }

    /// The parallelism this session executes under.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Replaces this session's parallelism (e.g. turn on wavefront
    /// inter-op for a branchy graph).
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.parallelism = parallelism;
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session").field("parallelism", &self.parallelism).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_is_sync_and_session_is_send() {
        fn assert_send_sync<T: Send + Sync>() {}
        fn assert_send<T: Send>() {}
        assert_send_sync::<Engine>();
        assert_send::<Session>();
    }
}
