//! The serving layer: a shared [`Engine`] handing out per-thread
//! [`Session`]s, with fault containment built in.
//!
//! The split mirrors the runtime's schedule/buffers design: the engine
//! holds the compiled state (schedule, plan, graph — all `Sync`, all
//! behind [`Arc`]s), and each session owns the one piece of per-caller
//! mutable state, its [`ExecBuffers`]. A serving process clones one
//! engine into every worker thread, gives each a session, and after each
//! session's first (warmup) request the steady-state loop performs
//! **zero heap allocations** per inference — the PR 2 contract,
//! preserved behind the front door and enforced by
//! `tests/steady_state_alloc.rs`.
//!
//! # Fault containment and graceful degradation
//!
//! A production engine must outlive its worst request. When a selected
//! kernel panics or fails mid-request (real bug or injected via
//! [`runtime::faults`](pbqp_dnn_runtime::faults)), the runtime contains
//! it into a typed error and the session:
//!
//! 1. **serves the request anyway** through the bit-exact serial
//!    reference path ([`reference_forward`]) — degraded latency, correct
//!    answer;
//! 2. **quarantines** the offending `(node, kernel)` pair engine-wide
//!    and re-plans in place: the quarantined node is routed to its f32
//!    baseline candidate and a fresh schedule is atomically swapped in
//!    (sessions notice via one atomic generation check per request);
//! 3. **counts** everything — [`Engine::health`] reports contained
//!    panics, degraded serves, and the quarantine list, so an operator
//!    can see a sick kernel before users do.
//!
//! The steady state pays one extra relaxed atomic load per request for
//! all of this; nothing else changes while no fault fires.
//!
//! # Online re-optimization
//!
//! [`Engine::enable_autotune`] turns the same swap machinery into a
//! *self-correcting* serving loop (see
//! [`autotune`](pbqp_dnn_autotune)): sessions sample live per-step
//! kernel latencies into preallocated reservoirs (one relaxed atomic
//! load per step while sampling is off anywhere in the process), a
//! background thread folds the summaries into an observed-cost table,
//! and when observed reality diverges far enough from the serving plan's
//! predictions it re-runs the PBQP solve off-thread and hot-swaps a
//! validated winner — never selecting a quarantined kernel, never
//! blocking an in-flight request. [`Engine::health`] reports the loop's
//! vitals: samples, divergence, re-optimization and failure counts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock, Weak};
use std::time::Instant;

use pbqp_dnn_autotune::{fold_observations, predicted_selections, AutotuneConfig};
use pbqp_dnn_cost::{AnalyticCost, MachineModel, ObservedTable};
use pbqp_dnn_graph::{DnnGraph, NodeId};
use pbqp_dnn_primitives::registry::Registry;
use pbqp_dnn_runtime::sampler::Sampler;
use pbqp_dnn_runtime::{
    reference_forward, BatchBuffers, ExecBuffers, Parallelism, RuntimeError, Schedule, Weights,
};
use pbqp_dnn_select::{ExecutionPlan, Optimizer};
use pbqp_dnn_tensor::transform::to_layout_into;
use pbqp_dnn_tensor::{Layout, Tensor};

use crate::artifact::CompiledModel;
use crate::Error;

/// The active serving state: swapped atomically (behind the `RwLock`)
/// when a quarantine re-plan or an autotune re-optimization lands.
struct ServingState {
    schedule: Arc<Schedule>,
    plan: Arc<ExecutionPlan>,
    /// The layout the (always f32) network output is delivered in — the
    /// active plan's sink layout.
    delivered: Layout,
    /// The live profiler for this generation, present while autotuning.
    /// Fresh per generation: a swap changes which kernel each step runs,
    /// so reusing reservoirs would mis-attribute timings.
    sampler: Option<Arc<Sampler>>,
}

/// Engine-wide shared state: the immutable compiled inputs plus the
/// swappable serving state and fault-health counters.
struct Shared {
    graph: Arc<DnnGraph>,
    base_plan: Arc<ExecutionPlan>,
    weights: Arc<Weights>,
    registry: Arc<Registry>,
    state: RwLock<ServingState>,
    /// Bumped on every successful re-plan; sessions compare one atomic
    /// per request and re-sync when it moves.
    generation: AtomicU64,
    contained_panics: AtomicU64,
    degraded_serves: AtomicU64,
    /// Quarantined `(node id, node name, kernel)` triples, accumulated
    /// across the engine's lifetime.
    quarantined: Mutex<Vec<(NodeId, String, String)>>,
    /// Online re-optimization state, set once by
    /// [`Engine::enable_autotune`].
    autotune: OnceLock<Arc<AutotuneState>>,
}

/// The autotune half of the shared engine state: the observed-cost
/// table, the trigger bookkeeping, and the loop's health counters.
struct AutotuneState {
    config: AutotuneConfig,
    /// Live `(node, kernel)` latency summaries, engine-lifetime.
    observed: Mutex<ObservedTable>,
    /// Successful background re-optimizations swapped in.
    reoptimizations: AtomicU64,
    /// Failed or refused re-solve attempts (injected faults, contained
    /// panics, plan/compile errors, quarantine-refused swaps).
    failures: AtomicU64,
    /// Bit pattern of the last computed divergence (`f64::to_bits`);
    /// NaN until the first measurable comparison.
    last_divergence: AtomicU64,
    /// Samples of the *current* generation's sampler already folded into
    /// `observed` — [`Engine::health`] adds the unfolded remainder so
    /// sampling is visible before the background thread's next poll.
    folded_current: AtomicU64,
    /// When the last re-solve was attempted (success or failure) — the
    /// cooldown basis, set at attempt time so a failed attempt retries
    /// on the next post-cooldown trigger rather than immediately.
    last_attempt: Mutex<Option<Instant>>,
}

impl Shared {
    /// Quarantines `(node, kernel)` engine-wide and re-plans around the
    /// full accumulated quarantine set. Never fails: if re-planning is
    /// impossible the old state stays active and requests keep being
    /// served (degraded through the reference path when the kernel keeps
    /// failing).
    fn quarantine(&self, node_name: &str, kernel: &str) {
        let pairs = {
            let mut q = lock_recover(&self.quarantined);
            if q.iter().any(|(_, n, k)| n == node_name && k == kernel) {
                return; // another session already handled this pair
            }
            let Some(node) = self.graph.find(node_name) else { return };
            q.push((node, node_name.to_owned(), kernel.to_owned()));
            q.iter().map(|(id, _, k)| (*id, k.clone())).collect::<Vec<_>>()
        };
        // The cost numbers only rank repair candidates — correctness of
        // the rerouted plan never depends on them — so a transient
        // analytic source on the rare degrade path is fine. Rerouting
        // from the base plan may discard an autotuned improvement; the
        // next autotune trigger re-solves around the quarantine and wins
        // it back.
        let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
        let optimizer = Optimizer::new(&self.registry, &cost);
        let Ok(plan) = optimizer.reroute(&self.graph, &self.base_plan, &pairs) else { return };
        let Ok(schedule) = Schedule::compile(&self.graph, &plan, &self.registry, &self.weights)
        else {
            return;
        };
        // Best-effort install: when every alternative for a node is
        // itself quarantined, the reroute keeps the least-bad kernel —
        // serving (degraded through the reference path when it keeps
        // failing) beats refusing to re-plan at all.
        self.install_plan(plan, schedule, false);
    }

    /// The single gate every plan swap goes through — quarantine
    /// reroutes and autotune re-optimizations alike — so concurrent
    /// swaps arbitrate to one consistent generation. Holds the
    /// quarantine lock across validation, the state write and the
    /// generation bump. With `refuse_quarantined` (the autotune path) a
    /// plan that selects a quarantined kernel is refused (`None`): the
    /// quarantine it races either already installed a repaired plan or
    /// will immediately after, and an optimization must never resurrect
    /// a failing kernel.
    ///
    /// Returns the new generation on success.
    fn install_plan(
        &self,
        plan: ExecutionPlan,
        schedule: Schedule,
        refuse_quarantined: bool,
    ) -> Option<u64> {
        // Lock order everywhere: quarantine list before serving state.
        let q = lock_recover(&self.quarantined);
        if refuse_quarantined {
            let dirty = plan
                .selected_primitives()
                .into_iter()
                .chain(plan.selected_op_kernels())
                .any(|(node, kernel)| q.iter().any(|(qn, _, qk)| *qn == node && qk == kernel));
            if dirty {
                return None;
            }
        }
        let delivered = delivered_layout(&self.graph, &plan);
        // Preserve the outgoing generation's observations: its sampler
        // retires with the swap, so fold its final summaries now.
        if let Some(at) = self.autotune.get() {
            let folded = {
                let state = self.state.read().unwrap_or_else(|e| e.into_inner());
                state.sampler.as_ref().map(|s| (state.schedule.step_meta(), s.snapshot()))
            };
            if let Some((meta, summaries)) = folded {
                fold_observations(&mut lock_recover(&at.observed), &meta, &summaries);
            }
            at.folded_current.store(0, Ordering::Relaxed);
        }
        let sampler = self
            .autotune
            .get()
            .map(|at| Sampler::new(schedule.step_count(), at.config.sample_rate));
        {
            let mut state = self.state.write().unwrap_or_else(|e| e.into_inner());
            *state = ServingState {
                schedule: Arc::new(schedule),
                plan: Arc::new(plan),
                delivered,
                sampler,
            };
        }
        let generation = self.generation.fetch_add(1, Ordering::Release) + 1;
        drop(q);
        Some(generation)
    }

    /// One background autotune poll: fold the current sampler into the
    /// observed table, update the divergence signal, and when the
    /// trigger policy fires run a re-solve and install a validated
    /// winner. Every failure path is contained — the engine keeps
    /// serving its current generation and the next post-cooldown trigger
    /// retries.
    fn autotune_tick(&self) {
        let Some(at) = self.autotune.get() else { return };
        let (schedule, plan, sampler) = {
            let state = self.state.read().unwrap_or_else(|e| e.into_inner());
            (Arc::clone(&state.schedule), Arc::clone(&state.plan), state.sampler.clone())
        };
        let Some(sampler) = sampler else { return };

        let total = sampler.total_samples();
        let meta = schedule.step_meta();
        let summaries = sampler.snapshot();
        let (samples, divergence) = {
            let mut observed = lock_recover(&at.observed);
            fold_observations(&mut observed, &meta, &summaries);
            at.folded_current.store(total, Ordering::Relaxed);
            let predicted = predicted_selections(&plan);
            (observed.total_samples(), observed.divergence(&predicted, at.config.min_node_samples))
        };
        if let Some(d) = divergence {
            at.last_divergence.store(d.to_bits(), Ordering::Relaxed);
        }
        let since_last = lock_recover(&at.last_attempt).map(|t| t.elapsed());
        if !at.config.should_trigger(samples, divergence, since_last) {
            return;
        }
        *lock_recover(&at.last_attempt) = Some(Instant::now());

        let quarantined: Vec<(NodeId, String)> =
            lock_recover(&self.quarantined).iter().map(|(id, _, k)| (*id, k.clone())).collect();
        let observed = lock_recover(&at.observed).clone();
        match pbqp_dnn_autotune::resolve(
            &self.graph,
            &self.registry,
            &observed,
            &plan,
            &quarantined,
            &at.config,
        ) {
            Ok(r) if r.improves => {
                let installed =
                    Schedule::compile(&self.graph, &r.plan, &self.registry, &self.weights)
                        .ok()
                        .and_then(|schedule| self.install_plan(r.plan, schedule, true));
                match installed {
                    Some(_) => {
                        at.reoptimizations.fetch_add(1, Ordering::Relaxed);
                    }
                    None => {
                        at.failures.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            // Converged, or the candidate's win is inside the margin:
            // not a failure, just nothing worth swapping.
            Ok(_) => {}
            Err(_) => {
                at.failures.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// The background re-optimizer loop: polls until its engine is dropped
/// (the `Weak` stops upgrading), never holding a strong reference that
/// would keep a retired engine alive.
fn autotune_loop(shared: Weak<Shared>, poll: std::time::Duration) {
    loop {
        std::thread::sleep(poll);
        let Some(shared) = shared.upgrade() else { return };
        shared.autotune_tick();
    }
}

/// Locks a mutex, recovering from poison (the guarded values here are
/// always coherent — single-field updates).
fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => {
            m.clear_poison();
            poisoned.into_inner()
        }
    }
}

/// The layout a plan delivers its (always f32) network output in: the
/// sink node's chosen layout.
fn delivered_layout(graph: &DnnGraph, plan: &ExecutionPlan) -> Layout {
    graph
        .topo_order()
        .ok()
        .and_then(|order| order.last().copied())
        .map(|sink| plan.assignment(sink).output_repr().layout)
        .unwrap_or(Layout::Chw)
}

/// An engine's fault-containment and autotune vitals — see
/// [`Engine::health`].
#[derive(Debug, Clone, PartialEq)]
pub struct Health {
    /// Kernel (and other) panics contained into typed errors instead of
    /// aborting the process.
    pub contained_panics: u64,
    /// Requests answered through the serial reference path after their
    /// selected kernel failed — degraded latency, correct results.
    pub degraded_serves: u64,
    /// Quarantined `(node, kernel)` pairs: these kernels panicked or
    /// failed, and the active plan routes around them.
    pub quarantined: Vec<(String, String)>,
    /// How many times the serving plan was re-planned and swapped
    /// (quarantine reroutes and autotune re-optimizations both count).
    /// `0` means the engine is still on its compiled plan.
    pub plan_generation: u64,
    /// Live-profiler samples observed so far: the folded observed-cost
    /// table plus the current generation's not-yet-folded sampler.
    /// Always `0` while autotune is off.
    pub samples: u64,
    /// The latest observed-vs-predicted cost divergence (mean relative
    /// error over sufficiently-sampled selections), `None` until
    /// measurable or while autotune is off.
    pub divergence: Option<f64>,
    /// Background re-optimizations successfully swapped in.
    pub reoptimizations: u64,
    /// Background re-solve attempts that failed or were refused
    /// (injected faults, contained panics, plan/compile errors,
    /// quarantine-refused swaps). The loop keeps serving the current
    /// generation and retries after the cooldown.
    pub autotune_failures: u64,
}

impl Health {
    /// `true` while no fault has ever fired: the engine serves its
    /// compiled plan at full speed.
    pub fn is_pristine(&self) -> bool {
        self.contained_panics == 0 && self.degraded_serves == 0 && self.quarantined.is_empty()
    }
}

/// A shared serving engine for one compiled model.
///
/// `Engine` is `Clone + Send + Sync`: hand one to every worker thread
/// (or wrap one in an `Arc` — cloning is a few reference-count bumps
/// either way) and create a [`Session`] per thread with
/// [`Engine::session`]. All clones share fault state: a kernel
/// quarantined by one session's request routes every session's
/// subsequent requests around it (see the [module docs](self)).
///
/// # Example
///
/// ```
/// use pbqp_dnn::prelude::*;
///
/// let net = models::micro_alexnet();
/// let weights = Weights::random(&net, 42);
/// let model = Compiler::new(CompileOptions::new()).compile(&net, &weights).unwrap();
/// let engine = model.engine();
///
/// let (c, h, w) = net.infer_shapes().unwrap()[0];
/// let inputs: Vec<Tensor> =
///     (0..4).map(|i| Tensor::random(c, h, w, Layout::Chw, 10 + i)).collect();
///
/// // Serve from two threads, one session each; results match the
/// // engine's one-shot API bit-for-bit.
/// let outputs: Vec<Tensor> = std::thread::scope(|scope| {
///     inputs
///         .chunks(2)
///         .map(|chunk| {
///             let engine = engine.clone();
///             scope.spawn(move || {
///                 let mut session = engine.session();
///                 chunk.iter().map(|x| session.infer_new(x).unwrap()).collect::<Vec<_>>()
///             })
///         })
///         .collect::<Vec<_>>()
///         .into_iter()
///         .flat_map(|h| h.join().unwrap())
///         .collect()
/// });
/// for (input, out) in inputs.iter().zip(&outputs) {
///     assert_eq!(engine.infer(input).unwrap().data(), out.data());
/// }
/// assert!(engine.health().is_pristine());
/// ```
#[derive(Clone)]
pub struct Engine {
    shared: Arc<Shared>,
    parallelism: Parallelism,
}

impl Engine {
    /// Builds an engine sharing a compiled model's state.
    pub(crate) fn from_model(model: &CompiledModel) -> Engine {
        let (schedule, graph, plan, weights, registry) = model.serving_parts();
        let delivered = delivered_layout(&graph, &plan);
        let shared = Shared {
            graph,
            base_plan: Arc::clone(&plan),
            weights,
            registry,
            state: RwLock::new(ServingState { schedule, plan, delivered, sampler: None }),
            generation: AtomicU64::new(0),
            contained_panics: AtomicU64::new(0),
            degraded_serves: AtomicU64::new(0),
            quarantined: Mutex::new(Vec::new()),
            autotune: OnceLock::new(),
        };
        Engine { shared: Arc::new(shared), parallelism: model.parallelism() }
    }

    /// Turns on online re-optimization: live traffic is sampled, and a
    /// background thread re-solves the PBQP selection against observed
    /// costs and hot-swaps validated improvements (see the
    /// [module docs](self) and [`pbqp_dnn_autotune`]).
    ///
    /// Can be enabled once per engine; returns `false` (and changes
    /// nothing) if autotune is already on. Enabling bumps the serving
    /// generation so existing sessions attach the sampler on their next
    /// request — a one-time buffer rebuild per session, after which the
    /// zero-allocation steady state holds again, sampling included.
    pub fn enable_autotune(&self, config: AutotuneConfig) -> bool {
        let state = AutotuneState {
            config: config.clone(),
            observed: Mutex::new(ObservedTable::new()),
            reoptimizations: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            last_divergence: AtomicU64::new(f64::NAN.to_bits()),
            folded_current: AtomicU64::new(0),
            last_attempt: Mutex::new(None),
        };
        if self.shared.autotune.set(Arc::new(state)).is_err() {
            return false;
        }
        {
            let mut state = self.shared.state.write().unwrap_or_else(|e| e.into_inner());
            state.sampler = Some(Sampler::new(state.schedule.step_count(), config.sample_rate));
        }
        self.shared.generation.fetch_add(1, Ordering::Release);
        let weak = Arc::downgrade(&self.shared);
        std::thread::Builder::new()
            .name("pbqp-autotune".to_owned())
            .spawn(move || autotune_loop(weak, config.poll_interval))
            .is_ok()
    }

    /// A new session owning its own warm-up-once buffer set, inheriting
    /// the engine's parallelism and synced to the active plan.
    pub fn session(&self) -> Session {
        // Generation first: worst case the session re-syncs an
        // already-current state on its first request, never serves a
        // newer state under an older generation forever.
        let generation = self.shared.generation.load(Ordering::Acquire);
        let (schedule, delivered, sampler) = {
            let state = self.shared.state.read().unwrap_or_else(|e| e.into_inner());
            (Arc::clone(&state.schedule), state.delivered, state.sampler.clone())
        };
        let mut bufs = schedule.make_buffers();
        if let Some(s) = &sampler {
            bufs.attach_sampler(s.state());
        }
        Session {
            shared: Arc::clone(&self.shared),
            parallelism: self.parallelism,
            generation,
            delivered,
            schedule,
            sampler,
            bufs,
            batch_bufs: BatchBuffers::new(),
        }
    }

    /// One-shot convenience inference: builds a transient session and an
    /// output tensor per call. Use [`Engine::session`] for the
    /// allocation-free steady-state loop.
    ///
    /// # Errors
    ///
    /// Propagates execution errors (bad input shape/layout, primitive
    /// failures). Contained kernel panics are *not* errors here — the
    /// request is served through the reference path (see the
    /// [module docs](self)).
    pub fn infer(&self, input: &Tensor) -> Result<Tensor, Error> {
        self.session().infer_new(input)
    }

    /// Validates `input` against the active schedule's expected shape,
    /// layout and dtype **without executing** — the admission check a
    /// request gateway runs before queuing, so one malformed request is
    /// rejected at the door instead of failing the batch it would have
    /// been coalesced into.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::BadInput`] (wrapped in [`Error::Runtime`])
    /// describing the mismatch.
    pub fn validate_input(&self, input: &Tensor) -> Result<(), Error> {
        let state = self.shared.state.read().unwrap_or_else(|e| e.into_inner());
        state.schedule.check_input(input).map_err(Into::into)
    }

    /// The plan this engine was compiled with. Quarantine re-planning
    /// never mutates it — see [`Engine::active_plan`] for what is
    /// serving right now.
    pub fn plan(&self) -> &ExecutionPlan {
        &self.shared.base_plan
    }

    /// The plan currently serving: the compiled plan, or the latest
    /// quarantine re-route.
    pub fn active_plan(&self) -> Arc<ExecutionPlan> {
        let state = self.shared.state.read().unwrap_or_else(|e| e.into_inner());
        Arc::clone(&state.plan)
    }

    /// The network this engine serves.
    pub fn graph(&self) -> &DnnGraph {
        &self.shared.graph
    }

    /// This engine's fault-containment and autotune vitals: contained
    /// panics, degraded serves, the quarantine list, the active plan
    /// generation, and — with [`Engine::enable_autotune`] on — the
    /// sampling/re-optimization counters. All clones of an engine share
    /// one set of vitals.
    pub fn health(&self) -> Health {
        let quarantined = lock_recover(&self.shared.quarantined)
            .iter()
            .map(|(_, node, kernel)| (node.clone(), kernel.clone()))
            .collect();
        let (samples, divergence, reoptimizations, autotune_failures) =
            match self.shared.autotune.get() {
                Some(at) => {
                    let folded = lock_recover(&at.observed).total_samples();
                    let pending = {
                        let state = self.shared.state.read().unwrap_or_else(|e| e.into_inner());
                        state.sampler.as_ref().map_or(0, |s| {
                            s.total_samples()
                                .saturating_sub(at.folded_current.load(Ordering::Relaxed))
                        })
                    };
                    let d = f64::from_bits(at.last_divergence.load(Ordering::Relaxed));
                    (
                        folded + pending,
                        (!d.is_nan()).then_some(d),
                        at.reoptimizations.load(Ordering::Relaxed),
                        at.failures.load(Ordering::Relaxed),
                    )
                }
                None => (0, None, 0, 0),
            };
        Health {
            contained_panics: self.shared.contained_panics.load(Ordering::Relaxed),
            degraded_serves: self.shared.degraded_serves.load(Ordering::Relaxed),
            quarantined,
            plan_generation: self.shared.generation.load(Ordering::Relaxed),
            samples,
            divergence,
            reoptimizations,
            autotune_failures,
        }
    }

    /// The parallelism new sessions inherit.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Returns an engine whose new sessions use `parallelism` instead of
    /// the compiled-in default.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Engine {
        self.parallelism = parallelism;
        self
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("nodes", &self.shared.graph.len())
            .field("parallelism", &self.parallelism)
            .field("generation", &self.shared.generation.load(Ordering::Relaxed))
            .finish()
    }
}

/// One caller's serving handle: a shared schedule plus an owned buffer
/// set. `Session` is `Send` (move it into a worker thread) but
/// deliberately not `Sync` — one session per thread is the model.
///
/// After the first (warmup) call settles buffer capacities,
/// [`Session::infer`] and [`Session::infer_batch`] with serial
/// parallelism perform zero heap allocations per request. If a kernel
/// fails mid-request the session recovers per the engine's containment
/// contract (see the [module docs](self)); the recovery path allocates,
/// the steady state does not.
pub struct Session {
    shared: Arc<Shared>,
    parallelism: Parallelism,
    /// The engine generation this session's schedule corresponds to.
    generation: u64,
    delivered: Layout,
    schedule: Arc<Schedule>,
    /// This generation's live profiler (autotune on), used to re-attach
    /// a recording state whenever the buffer set is rebuilt.
    sampler: Option<Arc<Sampler>>,
    bufs: ExecBuffers,
    batch_bufs: BatchBuffers,
}

impl Session {
    /// Re-syncs to the engine's active plan if a re-plan (quarantine or
    /// autotune) landed since this session last looked. One relaxed
    /// atomic load in the common (unchanged) case.
    fn refresh(&mut self) {
        let generation = self.shared.generation.load(Ordering::Acquire);
        if generation == self.generation {
            return;
        }
        {
            let state = self.shared.state.read().unwrap_or_else(|e| e.into_inner());
            self.schedule = Arc::clone(&state.schedule);
            self.delivered = state.delivered;
            self.sampler = state.sampler.clone();
        }
        self.rebuild_bufs();
        self.batch_bufs = BatchBuffers::new();
        self.generation = generation;
    }

    /// Replaces the buffer set (a panic may have dirtied it, or the plan
    /// moved), re-attaching the live-profiler state when sampling.
    fn rebuild_bufs(&mut self) {
        self.bufs = self.schedule.make_buffers();
        if let Some(s) = &self.sampler {
            self.bufs.attach_sampler(s.state());
        }
    }

    /// Runs one forward pass, writing the (always f32) network output
    /// into the caller-recycled `out`.
    ///
    /// # Errors
    ///
    /// Propagates bad-input and plan errors. A kernel panic or failure
    /// is *recovered*, not propagated: the request is served through the
    /// bit-exact reference path, the kernel is quarantined engine-wide,
    /// and [`Engine::health`] records the incident.
    pub fn infer(&mut self, input: &Tensor, out: &mut Tensor) -> Result<(), Error> {
        self.refresh();
        match self.schedule.run_into(input, &mut self.bufs, out, self.parallelism) {
            Ok(()) => Ok(()),
            Err(e) => self.recover(e, input, out),
        }
    }

    /// The containment path: rebuild state the failure may have dirtied,
    /// quarantine attributable kernel faults, and serve the request
    /// through the reference oracle.
    fn recover(
        &mut self,
        err: RuntimeError,
        input: &Tensor,
        out: &mut Tensor,
    ) -> Result<(), Error> {
        match err {
            RuntimeError::KernelPanicked { node, kernel, .. } => {
                self.shared.contained_panics.fetch_add(1, Ordering::Relaxed);
                // A panicking kernel may have left buffers mid-mutation.
                self.rebuild_bufs();
                self.shared.quarantine(&node, &kernel);
                self.degraded_serve(input, out)
            }
            RuntimeError::KernelFailed { node, kernel, .. } => {
                self.shared.quarantine(&node, &kernel);
                self.degraded_serve(input, out)
            }
            RuntimeError::Panicked { .. } => {
                // Contained, but with no kernel to attribute (worker
                // thread, edge conversion, buffer checkout): serve
                // degraded, nothing to quarantine.
                self.shared.contained_panics.fetch_add(1, Ordering::Relaxed);
                self.rebuild_bufs();
                self.degraded_serve(input, out)
            }
            other => Err(other.into()),
        }
    }

    /// Serves a request through the bit-exact serial reference path,
    /// delivered in the active plan's output layout.
    fn degraded_serve(&mut self, input: &Tensor, out: &mut Tensor) -> Result<(), Error> {
        let reference = reference_forward(&self.shared.graph, &self.shared.weights, input);
        // Sync to any re-plan the failure just triggered, so this
        // response's layout matches what subsequent requests deliver.
        self.refresh();
        if reference.layout() == self.delivered {
            out.assign_from(&reference);
        } else {
            to_layout_into(&reference, self.delivered, out);
        }
        self.shared.degraded_serves.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// [`Session::infer`] allocating a fresh output tensor.
    ///
    /// # Errors
    ///
    /// Propagates execution errors.
    pub fn infer_new(&mut self, input: &Tensor) -> Result<Tensor, Error> {
        let mut out = Tensor::empty();
        self.infer(input, &mut out)?;
        Ok(out)
    }

    /// Serves a whole batch in request order: `outs` is resized to
    /// `inputs.len()` and each slot's storage is recycled. Delegates to
    /// [`Session::infer_batch_into`] — see there for the fused execution
    /// and containment contract.
    ///
    /// # Errors
    ///
    /// Same contract as [`Session::infer_batch_into`].
    pub fn infer_batch(&mut self, inputs: &[Tensor], outs: &mut Vec<Tensor>) -> Result<(), Error> {
        if outs.len() != inputs.len() {
            outs.resize_with(inputs.len(), Tensor::empty);
        }
        self.infer_batch_into(inputs, outs)
    }

    /// Serves a whole batch through the **fused** execution path,
    /// writing item `i`'s output into the caller-recycled `outs[i]` —
    /// the zero-allocation batch entry point the gateway's dynamic
    /// batches flush through.
    ///
    /// Conv steps whose selected primitive supports it (the
    /// im2col/im2row GEMM family, sparse im2col) execute the whole batch
    /// as one wide GEMM, amortizing kernel re-layouts and packed panels
    /// across items; every other step runs per item. Each item's result
    /// is **bit-identical** to serving it alone through
    /// [`Session::infer`]. After a warmup at the largest batch size, a
    /// steady-state loop over batches of at most that size performs zero
    /// heap allocations (proven by `tests/steady_state_alloc.rs`).
    ///
    /// The whole batch is validated up front: an empty batch, a
    /// shape-mismatched member, or `outs.len() != inputs.len()` is a
    /// typed [`RuntimeError::BadInput`] before any item executes.
    ///
    /// If a kernel fails or panics mid-batch, the session falls back to
    /// serving every item through the serial path, which recovers per
    /// the engine's containment contract (quarantine + degraded serve —
    /// see the [module docs](self)); the recovery path allocates, the
    /// steady state does not.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::BadInput`] (wrapped in [`Error::Runtime`]) for an
    /// empty batch, a malformed member, or mismatched `outs` length —
    /// detected before execution. Otherwise the first non-containable
    /// error; earlier outputs are already written.
    pub fn infer_batch_into(
        &mut self,
        inputs: &[Tensor],
        outs: &mut [Tensor],
    ) -> Result<(), Error> {
        if inputs.is_empty() {
            return Err(RuntimeError::BadInput(
                "empty batch: infer_batch needs at least one input".to_owned(),
            )
            .into());
        }
        self.refresh();
        match self.schedule.run_batch_fused_into(
            inputs,
            &mut self.batch_bufs,
            outs,
            self.parallelism.intra_op,
        ) {
            Ok(()) => Ok(()),
            Err(e @ RuntimeError::BadInput(_)) => Err(e.into()),
            Err(_) => {
                // A kernel failed or panicked mid-batch: the shared
                // buffer sets may be dirty, so rebuild them and replay
                // the batch item-by-item through the serial path. A
                // deterministic fault re-fires there and is contained
                // per item (quarantined, served degraded); a one-shot
                // injected fault replays clean. Either way every slot
                // ends up with its item's correct output.
                self.batch_bufs = BatchBuffers::new();
                for (input, out) in inputs.iter().zip(outs.iter_mut()) {
                    self.infer(input, out)?;
                }
                Ok(())
            }
        }
    }

    /// The parallelism this session executes under.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Replaces this session's parallelism (e.g. turn on wavefront
    /// inter-op for a branchy graph).
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.parallelism = parallelism;
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("parallelism", &self.parallelism)
            .field("generation", &self.generation)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_is_sync_and_session_is_send() {
        fn assert_send_sync<T: Send + Sync>() {}
        fn assert_send<T: Send>() {}
        assert_send_sync::<Engine>();
        assert_send::<Session>();
    }

    #[test]
    fn empty_and_mismatched_batches_are_typed_errors() {
        use crate::{CompileOptions, Compiler};
        use pbqp_dnn_graph::models;

        let net = models::micro_alexnet();
        let weights = Weights::random(&net, 42);
        let model = Compiler::new(CompileOptions::new()).compile(&net, &weights).unwrap();
        let mut session = model.engine().session();
        let (c, h, w) = net.infer_shapes().unwrap()[0];

        let mut outs = Vec::new();
        let err = session.infer_batch(&[], &mut outs).unwrap_err();
        assert!(matches!(err, Error::Runtime(RuntimeError::BadInput(_))), "empty batch: got {err}");

        let good = Tensor::random(c, h, w, Layout::Chw, 7);
        let bad = Tensor::random(c, h + 1, w, Layout::Chw, 8);
        let err = session.infer_batch(&[good.clone(), bad, good.clone()], &mut outs).unwrap_err();
        assert!(
            matches!(err, Error::Runtime(RuntimeError::BadInput(_))),
            "mismatched member: got {err}"
        );

        // The session still serves after both rejections.
        session.infer_batch(std::slice::from_ref(&good), &mut outs).unwrap();
        assert_eq!(outs.len(), 1);
    }
}
