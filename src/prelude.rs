//! One import for the whole compile → ship → serve story.
//!
//! The prelude re-exports the front-door types ([`Compiler`],
//! [`CompiledModel`], [`Engine`], [`Session`], [`Error`]) together with
//! the vocabulary every caller needs around them: graph construction,
//! tensors, weights, machine models, strategies and parallelism. The
//! full per-crate APIs stay available under `pbqp_dnn::{tensor, graph,
//! primitives, cost, select, runtime, …}` for power users.
//!
//! # Example: the whole lifecycle in three steps
//!
//! ```
//! use pbqp_dnn::prelude::*;
//!
//! # fn main() -> Result<(), Error> {
//! let net = models::micro_alexnet();
//! let weights = Weights::random(&net, 42);
//!
//! // 1. Compile: solve the PBQP selection once, on the build host.
//! let compiler = Compiler::new(CompileOptions::new().machine(MachineModel::arm_a57_like()));
//! let model = compiler.compile(&net, &weights)?;
//!
//! // 2. Ship: the solution travels as bytes.
//! let mut artifact = Vec::new();
//! model.save(&mut artifact)?;
//! let deployed = CompiledModel::load(&mut artifact.as_slice())?;
//!
//! // 3. Serve: shared engine, per-thread sessions, zero-alloc steady
//! //    state after each session's first request.
//! let engine = deployed.engine();
//! let mut session = engine.session();
//! let (c, h, w) = net.infer_shapes()?[0];
//! let mut out = Tensor::empty();
//! session.infer(&Tensor::random(c, h, w, Layout::Chw, 7), &mut out)?;
//! assert_eq!(out.dims(), *net.infer_shapes()?.last().unwrap());
//! # Ok(())
//! # }
//! ```

pub use crate::artifact::{ArtifactError, CompiledModel};
pub use crate::compile::{CompileOptions, Compiler, CostModel, PrimitiveLibrary};
pub use crate::error::Error;
pub use crate::serve::{Engine, Health, Session};

pub use pbqp_dnn_autotune::{AutotuneConfig, CandidateFill};
pub use pbqp_dnn_cost::{AnalyticCost, MachineModel, MeasuredCost};
pub use pbqp_dnn_graph::{models, ConvScenario, DnnGraph, Layer, LayerKind, PoolKind};
pub use pbqp_dnn_runtime::{reference_forward, Parallelism, Weights};
pub use pbqp_dnn_select::Strategy;
pub use pbqp_dnn_tensor::{DType, Layout, Tensor};
