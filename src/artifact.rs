//! The compiled-model artifact: a PBQP solution as shippable bytes.
//!
//! A [`CompiledModel`] is everything the serving side needs and nothing
//! it has to recompute from scratch: the graph, the legalized execution
//! plan (with its output-conversion chains), the weights **including any
//! pre-quantized int8 images**, the primitive-library tag, the default
//! serving parallelism, and the compiled execution schedule (the
//! activation memory plan). [`CompiledModel::save`] /
//! [`CompiledModel::load`] move it across machines as a versioned,
//! fingerprint-validated binary stream — solve on the build host, serve
//! on the edge.
//!
//! # Format
//!
//! Hand-rolled little-endian binary (the deployment target is offline —
//! no serde), all multi-byte values via [`pbqp_dnn_tensor::wire`]:
//!
//! | offset | field |
//! |---|---|
//! | 0 | magic `PBQPDNN\0` (8 bytes) |
//! | 8 | format version (`u32`, currently 2) |
//! | 12 | graph fingerprint (`u64`, revalidated after decoding) |
//! | 20 | artifact fingerprint (`u64`, keys plan caches) |
//! | 28 | primitive-library code (`u8`) |
//! | 29 | default parallelism (`u64` inter-op, `u64` intra-op) |
//! | 45 | body length (`u64`) |
//! | 53 | stream checksum (`u64`, word-wise FNV over every other byte) |
//! | 61 | body: graph, plan, weights sections |
//!
//! The checksum covers the whole stream (header fields and body, minus
//! itself), so in-transit corruption anywhere — including a flipped
//! weight tap, which no structural fingerprint would notice — is
//! rejected at load instead of serving silently wrong results. The graph
//! fingerprint is defense in depth on top: it revalidates the *decoded*
//! structure against the header, catching checksum-valid but mis-paired
//! or mis-encoded streams.
//!
//! **Version policy:** the version is bumped on any incompatible change
//! and [`CompiledModel::load`] rejects every version it was not built
//! for — artifacts are deployment artifacts, not archival formats, so
//! there is no cross-version migration; recompile from the model instead.
//!
//! **Version history:** v1 encoded non-conv layers as layout-only
//! zero-cost "dummy" assignments. v2's plan section carries full
//! operator assignments (op kernel + `Repr` pair + cost) for every
//! non-conv node, plus the `Add` layer kind — v1 artifacts are refused
//! with [`ArtifactError::UnsupportedVersion`] (a clean, versioned error,
//! never a misparse), and serving hosts should recompile from the model.

use std::fmt;
use std::io::{Read, Write};
use std::sync::Arc;

use pbqp_dnn_graph::DnnGraph;
use pbqp_dnn_primitives::registry::Registry;
use pbqp_dnn_runtime::{faults, Parallelism, Schedule, Weights};
use pbqp_dnn_select::{wire as plan_wire, ExecutionPlan};
use pbqp_dnn_tensor::wire::{self, WireError, WireReader};

use crate::compile::PrimitiveLibrary;
use crate::serve::Engine;
use crate::Error;

/// The artifact magic bytes.
pub const MAGIC: [u8; 8] = *b"PBQPDNN\0";

/// The current (and only supported) artifact format version. Bumped to 2
/// when the plan wire section started encoding non-conv operator
/// assignments (first-class operator selection); v1 artifacts are
/// rejected with a versioned error.
pub const FORMAT_VERSION: u32 = 2;

/// Byte offset of the header's stream checksum (everything before it,
/// plus the body after it, is what the checksum covers).
const CHECKSUM_OFFSET: usize = 53;

/// Checksum over the stream minus the checksum field itself: the FNV-1a
/// xor-multiply step applied to 8-byte little-endian words (each section
/// zero-padded to a word boundary, section lengths folded in so padding
/// cannot alias) rather than single bytes — weight payloads are
/// megabytes, and the word-wise definition makes validation one multiply
/// per 8 bytes instead of per byte, at identical stability.
fn stream_checksum(header: &[u8], body: &[u8]) -> u64 {
    const PRIME: u64 = 0x100000001b3;
    let mut acc: u64 = 0xcbf29ce484222325;
    let eat = |acc: u64, word: u64| (acc ^ word).wrapping_mul(PRIME);
    for section in [header, body] {
        acc = eat(acc, section.len() as u64);
        let mut chunks = section.chunks_exact(8);
        for chunk in &mut chunks {
            acc = eat(acc, u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = [0u8; 8];
            word[..tail.len()].copy_from_slice(tail);
            acc = eat(acc, u64::from_le_bytes(word));
        }
    }
    acc
}

/// Errors from decoding or validating a compiled-model artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactError {
    /// The stream does not start with the artifact magic.
    BadMagic,
    /// The artifact was written by an incompatible format version.
    UnsupportedVersion {
        /// Version found in the stream.
        found: u32,
        /// Version this build reads.
        supported: u32,
    },
    /// The decoded graph's structural fingerprint disagrees with the
    /// header — the artifact was corrupted or tampered with in transit.
    FingerprintMismatch {
        /// Fingerprint recorded in the header.
        expected: u64,
        /// Fingerprint recomputed from the decoded graph.
        found: u64,
    },
    /// The header names a primitive library this build does not know.
    UnknownLibrary(u8),
    /// The stream's bytes do not hash to the header's checksum — the
    /// artifact was corrupted in transit.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum recomputed from the received bytes.
        found: u64,
    },
    /// A section failed to decode (truncation or corruption).
    Wire(WireError),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::BadMagic => f.write_str("not a pbqp-dnn compiled-model artifact"),
            ArtifactError::UnsupportedVersion { found, supported } => {
                write!(f, "artifact format version {found}, this build reads {supported}")
            }
            ArtifactError::FingerprintMismatch { expected, found } => {
                write!(f, "graph fingerprint {found:#018x} != header {expected:#018x}")
            }
            ArtifactError::UnknownLibrary(code) => {
                write!(f, "unknown primitive-library code {code}")
            }
            ArtifactError::ChecksumMismatch { expected, found } => {
                write!(f, "stream checksum {found:#018x} != header {expected:#018x}")
            }
            ArtifactError::Wire(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<WireError> for ArtifactError {
    fn from(e: WireError) -> Self {
        ArtifactError::Wire(e)
    }
}

impl From<WireError> for Error {
    fn from(e: WireError) -> Self {
        Error::Artifact(ArtifactError::Wire(e))
    }
}

/// A self-contained compiled model: the output of
/// [`Compiler::compile`](crate::Compiler::compile) and the unit that
/// ships between machines.
///
/// Holds the graph, the legalized plan (with output-conversion chains),
/// the weights (with pre-quantized int8 images for int8-assigned
/// layers), the rebuilt primitive registry and the compiled execution
/// [`Schedule`] — so [`CompiledModel::engine`] is infallible and
/// serving-ready. All heavyweight state is behind [`Arc`]s; cloning a
/// compiled model or spawning engines from it is cheap.
///
/// # Example
///
/// ```
/// use pbqp_dnn::prelude::*;
///
/// let net = models::micro_alexnet();
/// let weights = Weights::random(&net, 42);
/// let model = Compiler::new(CompileOptions::new()).compile(&net, &weights).unwrap();
///
/// // Ship the solved plan as bytes…
/// let mut bytes = Vec::new();
/// model.save(&mut bytes).unwrap();
/// let loaded = CompiledModel::load(&mut bytes.as_slice()).unwrap();
///
/// // …and the loaded model serves bit-identically.
/// let (c, h, w) = net.infer_shapes().unwrap()[0];
/// let input = Tensor::random(c, h, w, Layout::Chw, 7);
/// let a = model.engine().infer(&input).unwrap();
/// let b = loaded.engine().infer(&input).unwrap();
/// assert_eq!(a.data(), b.data());
/// ```
#[derive(Clone)]
pub struct CompiledModel {
    graph: Arc<DnnGraph>,
    plan: Arc<ExecutionPlan>,
    weights: Arc<Weights>,
    registry: Arc<Registry>,
    schedule: Arc<Schedule>,
    library: PrimitiveLibrary,
    parallelism: Parallelism,
    fingerprint: u64,
}

impl CompiledModel {
    /// Builds a compiled model from its parts, compiling (and thereby
    /// validating) the execution schedule: primitives resolved, weights
    /// checked against the graph, int8 kernels pre-quantized, activation
    /// memory plan computed.
    pub(crate) fn assemble(
        graph: Arc<DnnGraph>,
        plan: Arc<ExecutionPlan>,
        weights: Arc<Weights>,
        registry: Arc<Registry>,
        library: PrimitiveLibrary,
        parallelism: Parallelism,
        fingerprint: u64,
    ) -> Result<CompiledModel, Error> {
        let schedule = Arc::new(Schedule::compile(&graph, &plan, &registry, &weights)?);
        Ok(CompiledModel {
            graph,
            plan,
            weights,
            registry,
            schedule,
            library,
            parallelism,
            fingerprint,
        })
    }

    /// The network this model was compiled for.
    pub fn graph(&self) -> &DnnGraph {
        &self.graph
    }

    /// The legalized execution plan (selections, DT chains, boundary
    /// conversions, predicted latency).
    pub fn plan(&self) -> &ExecutionPlan {
        &self.plan
    }

    /// The trained parameters, including any pre-quantized int8 images.
    pub fn weights(&self) -> &Weights {
        &self.weights
    }

    /// The artifact fingerprint: a stable hash of (graph, strategy, cost
    /// source, library) that keys plan caches and identifies this
    /// artifact across machines.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The primitive library the plan selects from.
    pub fn library(&self) -> PrimitiveLibrary {
        self.library
    }

    /// The default serving parallelism baked in at compile time.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Pooled activation slots in the compiled memory plan (bounded by
    /// peak working set, not node count).
    pub fn activation_slots(&self) -> usize {
        self.schedule.activation_slots()
    }

    /// Shared handles for the serving layer: schedule, graph, plan,
    /// weights and registry — the last two power the engine's degraded
    /// reference path and quarantine re-planning.
    #[allow(clippy::type_complexity)]
    pub(crate) fn serving_parts(
        &self,
    ) -> (Arc<Schedule>, Arc<DnnGraph>, Arc<ExecutionPlan>, Arc<Weights>, Arc<Registry>) {
        (
            Arc::clone(&self.schedule),
            Arc::clone(&self.graph),
            Arc::clone(&self.plan),
            Arc::clone(&self.weights),
            Arc::clone(&self.registry),
        )
    }

    /// The registry rebuilt from the library tag (power-user access).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Creates a serving [`Engine`] sharing this model's state.
    /// Infallible: every validation already happened at assembly.
    pub fn engine(&self) -> Engine {
        Engine::from_model(self)
    }

    /// Serializes the model into `w` using the versioned binary format
    /// described in the [module docs](self).
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on write failure.
    pub fn save<W: Write + ?Sized>(&self, w: &mut W) -> Result<(), Error> {
        let mut body = Vec::new();
        plan_wire::put_graph(&mut body, &self.graph);
        plan_wire::put_plan(&mut body, &self.plan);
        self.weights.encode_into(&mut body);

        let mut out = Vec::with_capacity(body.len() + 64);
        out.extend_from_slice(&MAGIC);
        wire::put_u32(&mut out, FORMAT_VERSION);
        wire::put_u64(&mut out, self.graph.fingerprint());
        wire::put_u64(&mut out, self.fingerprint);
        wire::put_u8(&mut out, self.library.code());
        wire::put_usize(&mut out, self.parallelism.inter_op);
        wire::put_usize(&mut out, self.parallelism.intra_op);
        wire::put_usize(&mut out, body.len());
        let checksum = stream_checksum(&out, &body);
        wire::put_u64(&mut out, checksum);
        out.extend_from_slice(&body);
        w.write_all(&out)?;
        Ok(())
    }

    /// Deserializes a model written by [`CompiledModel::save`], verifying
    /// magic, format version and the graph fingerprint, then recompiling
    /// the execution schedule so the result is immediately servable.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on read failure; [`Error::Artifact`] for bad magic,
    /// unsupported versions, fingerprint mismatches, truncation or
    /// corruption; [`Error::Runtime`] if the decoded plan cannot be
    /// scheduled (e.g. it names primitives this build does not ship).
    /// A panic anywhere in decoding is contained into
    /// [`RuntimeError::Panicked`](pbqp_dnn_runtime::RuntimeError) — a
    /// hostile or corrupt stream can fail the load, never the process.
    pub fn load<R: Read + ?Sized>(r: &mut R) -> Result<CompiledModel, Error> {
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)?;
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| Self::load_bytes(bytes))) {
            Ok(result) => result,
            Err(payload) => Err(Error::Runtime(pbqp_dnn_runtime::RuntimeError::Panicked {
                context: "artifact load".to_owned(),
                message: faults::panic_message(payload),
            })),
        }
    }

    /// The decode stage of [`CompiledModel::load`], separated so the
    /// `artifact.read` failpoint and the panic containment wrap all of
    /// it.
    fn load_bytes(mut bytes: Vec<u8>) -> Result<CompiledModel, Error> {
        match faults::hit(faults::ARTIFACT_READ) {
            // A short read feeds the normal truncation path: the body
            // length check below reports `WireError::Truncated`.
            Some(faults::Injected::ShortRead(n)) => {
                let n = n.clamp(1, bytes.len());
                bytes.truncate(bytes.len() - n);
            }
            Some(faults::Injected::Error(message)) => {
                return Err(Error::Io(std::io::Error::other(message)));
            }
            None => {}
        }
        let mut reader = WireReader::new(&bytes);

        let magic = reader.take(8).map_err(|_| ArtifactError::BadMagic)?;
        if magic != MAGIC {
            return Err(ArtifactError::BadMagic.into());
        }
        let version = reader.u32().map_err(ArtifactError::from)?;
        if version != FORMAT_VERSION {
            return Err(ArtifactError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            }
            .into());
        }
        let graph_fingerprint = reader.u64().map_err(ArtifactError::from)?;
        let fingerprint = reader.u64().map_err(ArtifactError::from)?;
        let library_code = reader.u8().map_err(ArtifactError::from)?;
        let library = PrimitiveLibrary::from_code(library_code)
            .ok_or(ArtifactError::UnknownLibrary(library_code))?;
        let inter_op = reader.usize().map_err(ArtifactError::from)?;
        let intra_op = reader.usize().map_err(ArtifactError::from)?;
        let parallelism = Parallelism::serial().with_inter_op(inter_op).with_intra_op(intra_op);
        let body_len = reader.usize().map_err(ArtifactError::from)?;
        let checksum = reader.u64().map_err(ArtifactError::from)?;
        if reader.remaining() < body_len {
            return Err(ArtifactError::Wire(WireError::Truncated).into());
        }
        if reader.remaining() > body_len {
            return Err(ArtifactError::Wire(WireError::Corrupt(
                "trailing bytes after artifact body".into(),
            ))
            .into());
        }
        let header = &bytes[..CHECKSUM_OFFSET];
        let body = &bytes[CHECKSUM_OFFSET + 8..];
        let found = stream_checksum(header, body);
        if found != checksum {
            return Err(ArtifactError::ChecksumMismatch { expected: checksum, found }.into());
        }

        let graph = plan_wire::get_graph(&mut reader).map_err(ArtifactError::from)?;
        let found = graph.fingerprint();
        if found != graph_fingerprint {
            return Err(
                ArtifactError::FingerprintMismatch { expected: graph_fingerprint, found }.into()
            );
        }
        let plan = plan_wire::get_plan(&mut reader, &graph).map_err(ArtifactError::from)?;
        let weights = Weights::decode_from(&mut reader).map_err(ArtifactError::from)?;
        if !reader.is_empty() {
            return Err(ArtifactError::Wire(WireError::Corrupt(
                "trailing bytes after weights section".into(),
            ))
            .into());
        }

        CompiledModel::assemble(
            Arc::new(graph),
            Arc::new(plan),
            Arc::new(weights),
            Arc::new(library.registry()),
            library,
            parallelism,
            fingerprint,
        )
    }
}

impl fmt::Debug for CompiledModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledModel")
            .field("nodes", &self.graph.len())
            .field("library", &self.library)
            .field("fingerprint", &format_args!("{:#018x}", self.fingerprint))
            .field("predicted_us", &self.plan.predicted_us)
            .finish()
    }
}
