//! Quickstart: optimize a small CNN with PBQP, inspect the selection, and
//! run the legalized plan on real data.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pbqp_dnn_cost::{AnalyticCost, MachineModel};
use pbqp_dnn_graph::{ConvScenario, DnnGraph, Layer, LayerKind, PoolKind};
use pbqp_dnn_primitives::registry::{full_library, Registry};
use pbqp_dnn_runtime::{reference_forward, Executor, Weights};
use pbqp_dnn_select::{Optimizer, Strategy};
use pbqp_dnn_tensor::{Layout, Tensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe a small convolutional network (a LeNet-ish classifier).
    let mut net = DnnGraph::new();
    let data = net.add(Layer::new("data", LayerKind::Input { c: 3, h: 32, w: 32 }));
    let conv1 =
        net.add(Layer::new("conv1", LayerKind::Conv(ConvScenario::new(3, 32, 32, 1, 5, 16))));
    let relu1 = net.add(Layer::new("relu1", LayerKind::Relu));
    let pool1 = net
        .add(Layer::new("pool1", LayerKind::Pool { kind: PoolKind::Max, k: 2, stride: 2, pad: 0 }));
    let conv2 =
        net.add(Layer::new("conv2", LayerKind::Conv(ConvScenario::new(16, 16, 16, 1, 3, 32))));
    let relu2 = net.add(Layer::new("relu2", LayerKind::Relu));
    let fc = net.add(Layer::new("fc", LayerKind::FullyConnected { out: 10 }));
    let prob = net.add(Layer::new("prob", LayerKind::Softmax));
    for (a, b) in [
        (data, conv1),
        (conv1, relu1),
        (relu1, pool1),
        (pool1, conv2),
        (conv2, relu2),
        (relu2, fc),
        (fc, prob),
    ] {
        net.connect(a, b)?;
    }

    // 2. Build the primitive library (70+ routines) and a cost model.
    let registry = Registry::new(full_library());
    let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
    println!("library: {} primitives", registry.len());

    // 3. Solve for the globally optimal selection, DT costs included.
    let optimizer = Optimizer::new(&registry, &cost);
    let plan = optimizer.plan(&net, Strategy::Pbqp)?;
    println!("{plan}");
    println!("solver: optimal = {:?}, solve time = {:.1} µs", plan.optimal, plan.solve_time_us);

    // 4. Compare against the baselines of the paper's §5.
    for strategy in [Strategy::Sum2d, Strategy::LocalOptimalChw, Strategy::CaffeLike] {
        let p = optimizer.plan(&net, strategy)?;
        println!(
            "{:24} {:10.1} µs predicted ({:.2}x vs sum2d)",
            strategy.label(),
            p.predicted_us,
            optimizer.plan(&net, Strategy::Sum2d)?.predicted_us / p.predicted_us
        );
    }

    // 5. Execute the winning plan on real data and verify it against the
    //    textbook reference implementation.
    let weights = Weights::random(&net, 42);
    let input = Tensor::random(3, 32, 32, Layout::Chw, 7);
    let out = Executor::new(&net, &plan, &registry, &weights).run(&input, 1)?;
    let oracle = reference_forward(&net, &weights, &input);
    let diff = out.max_abs_diff(&oracle)?;
    println!("plan output matches reference: max |Δ| = {diff:.2e}");
    assert!(diff < 1e-3);
    Ok(())
}
