//! Quickstart: the whole front-door lifecycle on a small CNN —
//! compile (one PBQP solve), ship (bytes), serve (zero-alloc sessions) —
//! then a peek under the hood at the plan and the paper's baselines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pbqp_dnn::prelude::*;
use pbqp_dnn::select::Optimizer;

fn main() -> Result<(), Error> {
    // 1. Describe a small convolutional network (a LeNet-ish classifier).
    let mut net = DnnGraph::new();
    let data = net.add(Layer::new("data", LayerKind::Input { c: 3, h: 32, w: 32 }));
    let conv1 =
        net.add(Layer::new("conv1", LayerKind::Conv(ConvScenario::new(3, 32, 32, 1, 5, 16))));
    let relu1 = net.add(Layer::new("relu1", LayerKind::Relu));
    let pool1 = net
        .add(Layer::new("pool1", LayerKind::Pool { kind: PoolKind::Max, k: 2, stride: 2, pad: 0 }));
    let conv2 =
        net.add(Layer::new("conv2", LayerKind::Conv(ConvScenario::new(16, 16, 16, 1, 3, 32))));
    let relu2 = net.add(Layer::new("relu2", LayerKind::Relu));
    let fc = net.add(Layer::new("fc", LayerKind::FullyConnected { out: 10 }));
    let prob = net.add(Layer::new("prob", LayerKind::Softmax));
    for (a, b) in [
        (data, conv1),
        (conv1, relu1),
        (relu1, pool1),
        (pool1, conv2),
        (conv2, relu2),
        (relu2, fc),
        (fc, prob),
    ] {
        net.connect(a, b)?;
    }
    let weights = Weights::random(&net, 42);

    // 2. Compile: one configured front door owns the library, the cost
    //    model and the PBQP solve.
    let compiler = Compiler::new(CompileOptions::new().machine(MachineModel::intel_haswell_like()));
    let model = compiler.compile(&net, &weights)?;
    println!("{}", model.plan());
    println!(
        "solver: optimal = {:?}, solve time = {:.1} µs, artifact fingerprint = {:#018x}",
        model.plan().optimal,
        model.plan().solve_time_us,
        model.fingerprint()
    );

    // 3. Ship: the compiled model (plan + memory plan + weights) is bytes.
    let mut artifact = Vec::new();
    model.save(&mut artifact)?;
    let deployed = CompiledModel::load(&mut artifact.as_slice())?;
    println!("artifact: {} bytes, round-trips losslessly", artifact.len());

    // 4. Serve: engine shared, sessions per thread, outputs verified
    //    against the independent textbook reference.
    let engine = deployed.engine();
    let mut session = engine.session();
    let input = Tensor::random(3, 32, 32, Layout::Chw, 7);
    let mut out = Tensor::empty();
    session.infer(&input, &mut out)?; // warmup; later calls allocate nothing
    session.infer(&input, &mut out)?;
    let oracle = reference_forward(&net, &weights, &input);
    let diff = out.max_abs_diff(&oracle)?;
    println!("served output matches reference: max |Δ| = {diff:.2e}");
    assert!(diff < 1e-3);

    // 5. Under the hood: the low-level crates stay available — compare
    //    the paper's §5 baselines against the PBQP selection.
    let registry = deployed.registry();
    let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
    let optimizer = Optimizer::new(registry, &cost);
    let sum2d = optimizer.plan(&net, Strategy::Sum2d)?.predicted_us;
    for strategy in [Strategy::Sum2d, Strategy::LocalOptimalChw, Strategy::CaffeLike] {
        let p = optimizer.plan(&net, strategy)?;
        println!(
            "{:24} {:10.1} µs predicted ({:.2}x vs sum2d)",
            strategy.label(),
            p.predicted_us,
            sum2d / p.predicted_us
        );
    }
    println!(
        "{:24} {:10.1} µs predicted ({:.2}x vs sum2d)",
        "PBQP (this model)",
        model.plan().predicted_us,
        sum2d / model.plan().predicted_us
    );
    Ok(())
}
