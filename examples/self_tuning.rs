//! Self-tuning serving: compile against a wrong machine model, then let
//! live traffic fix it.
//!
//! The example compiles micro-resnet against a machine model that
//! overstates the int8 speedup 30x — the compile-time PBQP solve picks
//! int8 kernels everywhere the quantization edges allow, whether or not
//! they pay on this host. [`Engine::enable_autotune`] then arms the
//! live sampler: served requests feed per-(node, kernel) latencies into
//! an observed-cost table, a background thread watches the divergence
//! between observed and predicted costs, re-solves the PBQP instance
//! against reality when the gap is large enough, and hot-swaps the plan
//! under the same lock the quarantine path uses. In-flight requests are
//! never blocked; each one runs to completion under the plan it started
//! with.
//!
//! ```sh
//! cargo run --release --example self_tuning
//! ```

use std::time::{Duration, Instant};

use pbqp_dnn::cost::CostTable;
use pbqp_dnn::prelude::*;
use pbqp_dnn::runtime::Executor;
use pbqp_dnn::select::Optimizer;

fn main() -> Result<(), Error> {
    // A machine model that is confidently wrong about int8.
    let mut wrong = MachineModel::intel_haswell_like();
    wrong.int8_speedup = 30.0;
    wrong.int8_pointwise_speedup = 30.0;

    let net = models::micro_resnet();
    let weights = Weights::random(&net, 0x77);
    let model = Compiler::new(CompileOptions::new().machine(wrong).mixed_precision(true))
        .compile(&net, &weights)?;
    println!("[tune] compiled against the mis-model: {}", model.plan());

    // The paper's offline methodology on *this* host — measured costs,
    // PBQP — is the ground truth the online loop should rediscover.
    let probe = MeasuredCost::new(1, 3).with_scale(4);
    let offline_table = CostTable::profile(&net, model.registry(), &probe);
    let shapes = net.infer_shapes()?;
    let optimizer = Optimizer::new(model.registry(), &probe);
    let offline_plan = optimizer.plan_with_table(&net, &shapes, &offline_table, Strategy::Pbqp)?;
    let offline_us = optimizer.price_plan(&net, &shapes, &offline_table, &offline_plan);
    let price = |plan: &pbqp_dnn::select::ExecutionPlan| {
        optimizer.price_plan(&net, &shapes, &offline_table, plan)
    };

    let engine = model.engine();
    let initial_us = price(&engine.active_plan());
    println!(
        "[tune] offline optimum prices at {offline_us:.0} µs; the mis-modeled plan at \
         {initial_us:.0} µs"
    );

    // Arm the sampler and the background re-optimizer. Sampling rate 1
    // makes the demo converge fast; production deployments sample a
    // fraction of requests and pay one relaxed atomic load on the rest.
    engine.enable_autotune(
        AutotuneConfig::new()
            .with_sample_rate(1)
            .with_min_samples(40)
            .with_min_node_samples(3)
            .with_divergence_threshold(0.25)
            .with_cooldown(Duration::from_millis(100))
            .with_poll_interval(Duration::from_millis(10))
            .with_fill(CandidateFill::Probe { reps: 3, scale: 4 }),
    );

    // Serve live traffic and narrate every hot-swap as it lands.
    let input = Tensor::random(16, 48, 48, Layout::Chw, 0xC0);
    let mut session = engine.session();
    let started = Instant::now();
    let mut stable_since = Instant::now();
    let mut last_gen = engine.health().plan_generation;
    let initially_close = initial_us <= offline_us * 1.30;
    loop {
        session.infer_new(&input)?;
        let health = engine.health();
        if health.plan_generation != last_gen {
            last_gen = health.plan_generation;
            stable_since = Instant::now();
            println!(
                "[tune] hot-swap → generation {} after {:?}: {} samples, divergence {}, plan \
                 now prices at {:.0} µs",
                health.plan_generation,
                started.elapsed(),
                health.samples,
                health.divergence.map(|d| format!("{d:.3}")).unwrap_or_else(|| "-".into()),
                price(&engine.active_plan()),
            );
        }
        let settled = health.samples >= 40
            && stable_since.elapsed() > Duration::from_millis(600)
            && (initially_close || health.reoptimizations >= 1);
        if settled || started.elapsed() > Duration::from_secs(120) {
            break;
        }
    }

    let health = engine.health();
    let final_us = price(&engine.active_plan());
    println!(
        "[tune] settled: generation {}, {} re-optimizations ({} rejected), {} samples; plan \
         prices at {final_us:.0} µs vs offline optimum {offline_us:.0} µs",
        health.plan_generation, health.reoptimizations, health.autotune_failures, health.samples,
    );

    // The settled engine still serves bit-identically to a serial
    // executor running its active plan — hot-swapping never trades away
    // determinism.
    let out = session.infer_new(&input)?;
    let active = engine.active_plan();
    let direct =
        Executor::new(model.graph(), &active, model.registry(), model.weights()).run(&input, 1)?;
    assert_eq!(out.data(), direct.data(), "settled serving must be deterministic");
    println!("[tune] settled engine serves bit-identical to its active plan");
    Ok(())
}
