//! Mixed-precision serving: precision as just another axis of the PBQP
//! selection space.
//!
//! The paper's formulation (§3.1) prices every candidate primitive per
//! layer and every representation conversion per edge, then solves for
//! the global optimum. Int8 kernels are simply more candidates, and
//! quantize/dequantize are simply more DT-graph edges — so one solve
//! decides, per layer, whether the int8 compute win outweighs the
//! conversion cost. Big GEMM-bound layers go int8; layers where a strong
//! f32 algorithm (Winograd) already wins, or where the tensors are too
//! small to amortize the quantize/dequantize round trip, stay f32.
//!
//! ```sh
//! cargo run --release --example quantized_serving
//! ```

use pbqp_dnn::cost::{AnalyticCost, MachineModel};
use pbqp_dnn::graph::models;
use pbqp_dnn::prelude::{CompileOptions, Compiler, Error};
use pbqp_dnn::primitives::registry::{full_library, mixed_precision_library, Registry};
use pbqp_dnn::runtime::{reference_forward, Weights};
use pbqp_dnn::select::{AssignmentKind, Optimizer, Strategy};
use pbqp_dnn::tensor::{DType, Layout, Tensor};

fn main() -> Result<(), Error> {
    // ---- 1. The solver mixes precisions on a published model ----------
    let mixed_reg = Registry::new(mixed_precision_library());
    let f32_reg = Registry::new(full_library());
    let cost = AnalyticCost::new(MachineModel::arm_a57_like(), 4);
    let net = models::alexnet();

    let mixed = Optimizer::new(&mixed_reg, &cost).plan(&net, Strategy::Pbqp)?;
    let f32_only = Optimizer::new(&f32_reg, &cost).plan(&net, Strategy::Pbqp)?;

    println!("AlexNet on {}:", cost.machine());
    for a in &mixed.assignments {
        if let AssignmentKind::Conv { primitive, input_repr, output_repr, cost_us } = &a.kind {
            let tag = if input_repr.dtype == DType::I8 { "int8" } else { " f32" };
            println!("  [{tag}] {{{input_repr}, {primitive}, {output_repr}}} {cost_us:9.1} µs");
        }
    }
    println!("  f32-only optimum : {:9.1} µs predicted", f32_only.predicted_us);
    println!(
        "  mixed optimum    : {:9.1} µs predicted  ({} int8 layers, {} quant/dequant edges, {:.1}% faster)",
        mixed.predicted_us,
        mixed.int8_layers().len(),
        mixed.quant_edge_count(),
        100.0 * (1.0 - mixed.predicted_us / f32_only.predicted_us)
    );
    assert!(mixed.is_mixed_precision(), "solver should keep Winograd-friendly layers in f32");
    assert!(mixed.predicted_us <= f32_only.predicted_us);

    // ---- 2. …and the front door serves the mixed plan end to end ------
    // A small serving network whose big strided layer tips to int8,
    // compiled through the one-line mixed-precision switch.
    let g = models::micro_mixed();

    let model = Compiler::new(
        CompileOptions::new().machine(MachineModel::intel_haswell_like()).mixed_precision(true),
    )
    .compile(&g, &Weights::random(&g, 0xFEED))?;
    println!("\nserving network: {}", model.plan());

    let weights = model.weights().clone();
    let input = Tensor::random(16, 20, 20, Layout::Chw, 7);
    let oracle = reference_forward(&g, &weights, &input);

    // Warm once, then serve allocation-free out of the session's
    // recycled storage: weights were quantized at compile time,
    // activations quantize/dequantize through pooled staging buffers.
    let engine = model.engine();
    let mut session = engine.session();
    let mut out = Tensor::empty();
    session.infer(&input, &mut out)?;
    for _ in 0..3 {
        session.infer(&input, &mut out)?;
    }
    let plan = model.plan();
    let diff = out.max_abs_diff(&oracle)?;
    let maxabs = oracle.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    println!(
        "mixed-precision serving: max |err| {diff:.4} vs f32 oracle (range ±{maxabs:.2}) over {} int8 + {} f32 conv layers",
        plan.int8_layers().len(),
        plan.selected_primitives().len() - plan.int8_layers().len(),
    );
    assert!(diff < 0.05 * maxabs + 0.05, "int8 error must stay within quantization budget");
    Ok(())
}
