//! Fault drill: inject kernel panics into a live engine and watch it
//! degrade gracefully instead of dying.
//!
//! The drill compiles the int8-island model (micro-resnet on the ARM
//! machine model, mixed precision), then serves a stream of requests
//! while failpoints fire. A panicking kernel is contained, the request
//! is answered through the bit-exact reference path, the kernel is
//! quarantined and the plan re-routed around it — the caller never sees
//! an error, only [`Engine::health`] does.
//!
//! ```sh
//! cargo run --release --example fault_drill
//! ```
//!
//! By default the drill arms its own failpoint (`kernel.dispatch` panics
//! on the 3rd dispatch). Set `PBQP_DNN_FAILPOINTS` to run your own
//! scenario with the same grammar the library reads in production:
//!
//! ```sh
//! PBQP_DNN_FAILPOINTS='kernel.dispatch=prob(0.2,7):panic(flaky simd)' \
//!     cargo run --release --example fault_drill
//! ```

use pbqp_dnn::prelude::*;
use pbqp_dnn::{faults, runtime::Executor};

fn main() -> Result<(), Error> {
    // `armed()` consults PBQP_DNN_FAILPOINTS on first use; an empty
    // answer means no operator spec, so the drill arms its default.
    let env_driven = !faults::armed().is_empty();
    if !env_driven {
        faults::arm(faults::KERNEL_DISPATCH, "nth(3):panic(drill: kernel bug)").unwrap();
    }
    println!("[drill] armed failpoints ({}):", if env_driven { "env" } else { "default" });
    for (site, _, _) in faults::armed() {
        println!("[drill]   {site}");
    }

    // The int8-island model: micro-resnet's stem stays quantized end to
    // end on the ARM machine model — the juiciest plan to break.
    let net = models::micro_resnet();
    let weights = Weights::random(&net, 0x2026);
    let model = Compiler::new(
        CompileOptions::new().machine(MachineModel::arm_a57_like()).mixed_precision(true),
    )
    .compile(&net, &weights)?;
    println!("[drill] compiled: {}", model.plan());

    let engine = model.engine();
    let mut session = engine.session();
    let input = Tensor::random(16, 48, 48, Layout::Chw, 0xD1);
    let oracle = reference_forward(&net, &weights, &input);

    // Serve through the storm. Contained panics print no backtraces —
    // that is the point of the drill — so silence the default hook.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut out = Tensor::empty();
    for request in 0..6 {
        let before = engine.health();
        match session.infer(&input, &mut out) {
            Ok(()) => {
                let after = engine.health();
                let verdict = if after.degraded_serves > before.degraded_serves {
                    assert!(
                        out.allclose(&oracle, 1e-4).unwrap(),
                        "degraded serve must match the reference oracle"
                    );
                    "DEGRADED (reference path, answer verified)"
                } else {
                    "ok"
                };
                println!("[drill] request {request}: {verdict}");
            }
            // Faults the engine cannot transparently absorb (e.g. an
            // injected artifact or quant-edge error) surface typed.
            Err(e) => println!("[drill] request {request}: typed error: {e}"),
        }
    }
    drop(std::panic::take_hook());
    std::panic::set_hook(hook);

    let health = engine.health();
    println!(
        "[drill] health: {} contained panics, {} degraded serves, plan generation {}",
        health.contained_panics, health.degraded_serves, health.plan_generation
    );
    for (node, kernel) in &health.quarantined {
        println!("[drill]   quarantined: node `{node}` kernel `{kernel}`");
    }
    if !env_driven {
        assert!(health.contained_panics >= 1, "the default drill must contain a panic");
        assert!(!health.quarantined.is_empty(), "the default drill must quarantine");
    }

    // All clear: disarm, and prove the (possibly re-routed) engine
    // serves bit-identically to a serial executor running its active
    // plan.
    faults::disarm_all();
    let clean = session.infer_new(&input)?;
    let active = engine.active_plan();
    let direct =
        Executor::new(model.graph(), &active, model.registry(), model.weights()).run(&input, 1)?;
    assert_eq!(clean.data(), direct.data(), "post-drill serving must be deterministic");
    println!("[drill] disarmed: engine serves clean, bit-identical to its active plan");
    Ok(())
}
