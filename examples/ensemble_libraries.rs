//! The §8 ensemble idea: "our approach can enable the construction of
//! DNNs using convolution routines from different libraries, if at least
//! one edge in the DT graph connects a convolution from library A to one
//! from library B."
//!
//! Models two vendor libraries:
//!
//! * **library A** — a planar-layout BLAS-style library (im2col/kn2row/
//!   direct loops over CHW-family layouts, no interleaved routines);
//! * **library B** — an interleaved-layout (HWC-family) library whose
//!   im2row kernels stream patches contiguously and run slightly faster.
//!
//! The network input arrives planar, so library B is only reachable
//! through the DT graph. With the CHW↔HWC bridge present, PBQP pays the
//! conversion once and runs the whole stack out of library B; with the
//! bridge removed it must stay in library A.
//!
//! ```sh
//! cargo run --release --example ensemble_libraries
//! ```

use pbqp_dnn::cost::{AnalyticCost, DtGraph, MachineModel};
use pbqp_dnn::graph::models::{self, VggVariant};
use pbqp_dnn::primitives::registry::{full_library, Registry};
use pbqp_dnn::primitives::Family;
use pbqp_dnn::select::{Optimizer, Strategy};
use pbqp_dnn::tensor::transform::DIRECT_TRANSFORMS;
use pbqp_dnn::tensor::Layout;
use pbqp_dnn::Error;

fn main() -> Result<(), Error> {
    let planar = [Layout::Chw, Layout::Cwh, Layout::Hcw, Layout::Chw4, Layout::Chw8];
    let lib_of = |layout: Layout| if planar.contains(&layout) { "A" } else { "B" };

    // Library A: planar routines, but no fast-convolution algorithms (a
    // plain BLAS-backed library). Library B: every interleaved routine.
    // Note the second condition: a primitive that reads one library's
    // layout and writes the other's (e.g. `im2row_packed_chw_out`) is
    // itself a DT-graph bridge, so a faithful "isolated libraries"
    // experiment must exclude such cross-layout routines.
    let ensemble: Vec<_> = full_library()
        .into_iter()
        .filter(|p| {
            let d = p.descriptor();
            let within_one_library = lib_of(d.input_layout) == lib_of(d.output_layout);
            within_one_library
                && match lib_of(d.input_layout) {
                    "A" => !matches!(d.family, Family::Winograd | Family::Fft),
                    _ => true,
                }
        })
        .collect();
    let registry = Registry::new(ensemble);
    println!("ensemble registry: {} primitives", registry.len());

    let net = models::vgg(VggVariant::C);
    let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 4);

    // Full DT graph: the CHW↔HWC bridge connects the libraries.
    let bridged = Optimizer::new(&registry, &cost);
    let plan_bridged = bridged.plan(&net, Strategy::Pbqp)?;

    // Remove every edge crossing the planar/interleaved boundary.
    let isolated_edges: Vec<_> =
        DIRECT_TRANSFORMS.iter().copied().filter(|t| lib_of(t.from) == lib_of(t.to)).collect();
    let isolated =
        Optimizer::new(&registry, &cost).with_dt_graph(DtGraph::with_edges(isolated_edges));
    let plan_isolated = isolated.plan(&net, Strategy::Pbqp)?;

    let libs_used = |plan: &pbqp_dnn::select::ExecutionPlan| {
        let (mut a, mut b) = (0, 0);
        for (_, prim) in plan.selected_primitives() {
            match lib_of(registry.by_name(prim).unwrap().descriptor().input_layout) {
                "A" => a += 1,
                _ => b += 1,
            }
        }
        (a, b)
    };

    let (a1, b1) = libs_used(&plan_bridged);
    let (a2, b2) = libs_used(&plan_isolated);
    println!("VGG-C, 13 convolution layers:");
    println!(
        "  bridged DT graph  : {:8.1} ms predicted, library A x{a1}, library B x{b1}, {} transforms",
        plan_bridged.predicted_us / 1000.0,
        plan_bridged.transform_count(),
    );
    println!(
        "  isolated libraries: {:8.1} ms predicted, library A x{a2}, library B x{b2}",
        plan_isolated.predicted_us / 1000.0
    );
    assert!(plan_bridged.predicted_us < plan_isolated.predicted_us, "the bridge must pay off");
    assert!(b1 > 0, "bridged plan should reach library B");
    assert_eq!(b2, 0, "isolated plan must stay inside library A");
    println!(
        "ensembles pay off: bridge saves {:.1} ms ({:.1}%)",
        (plan_isolated.predicted_us - plan_bridged.predicted_us) / 1000.0,
        100.0 * (1.0 - plan_bridged.predicted_us / plan_isolated.predicted_us)
    );
    Ok(())
}
