//! The §8 sparsity extension: "given some convolution routines which
//! leverage sparsity in the kernel … our approach can be used to decide
//! whether a dense or a sparse implementation (and moreover, which sparse
//! implementation) will be faster for any given convolutional layer".
//!
//! Sweeps the kernel sparsity ratio of a VGG-style layer and shows the
//! PBQP selection flipping from a dense primitive to a CSR sparse one at
//! some crossover, then verifies the sparse plan end to end.
//!
//! ```sh
//! cargo run --release --example sparsity_extension
//! ```

use pbqp_dnn::cost::{AnalyticCost, MachineModel};
use pbqp_dnn::graph::{ConvScenario, DnnGraph, Layer, LayerKind};
use pbqp_dnn::primitives::registry::{full_library, Registry};
use pbqp_dnn::runtime::{reference_forward, Executor, Weights};
use pbqp_dnn::select::{AssignmentKind, Optimizer, Strategy};
use pbqp_dnn::tensor::{Layout, Tensor};
use pbqp_dnn::Error;

fn net_with_sparsity(pm: u16) -> DnnGraph {
    let mut g = DnnGraph::new();
    let data = g.add(Layer::new("data", LayerKind::Input { c: 64, h: 28, w: 28 }));
    let conv = g.add(Layer::new(
        "conv",
        LayerKind::Conv(ConvScenario::new(64, 28, 28, 1, 3, 64).with_sparsity_pm(pm)),
    ));
    let relu = g.add(Layer::new("relu", LayerKind::Relu));
    g.connect(data, conv).unwrap();
    g.connect(conv, relu).unwrap();
    g
}

fn main() -> Result<(), Error> {
    let registry = Registry::new(full_library());
    let cost = AnalyticCost::new(MachineModel::arm_a57_like(), 1);
    let optimizer = Optimizer::new(&registry, &cost);

    println!("{:>9} {:>28} {:>12}", "sparsity", "PBQP selection", "cost (µs)");
    let mut crossover = None;
    for pm in [0u16, 250, 500, 700, 800, 900, 950, 990] {
        let net = net_with_sparsity(pm);
        let plan = optimizer.plan(&net, Strategy::Pbqp)?;
        let conv = net.find("conv").unwrap();
        let AssignmentKind::Conv { primitive, cost_us, .. } = plan.assignment(conv) else {
            unreachable!("conv node");
        };
        println!("{:>8.1}% {:>28} {:>12.1}", pm as f64 / 10.0, primitive, cost_us);
        if crossover.is_none() && primitive.starts_with("sparse") {
            crossover = Some(pm);
        }
    }
    let pm = crossover.expect("a sparse routine should win at high sparsity");
    println!("\ndense→sparse crossover at {:.1}% kernel sparsity", pm as f64 / 10.0);

    // Execute the sparse plan and verify against the reference (weights are
    // genuinely sparsified to the scenario's ratio).
    let net = net_with_sparsity(950);
    let plan = optimizer.plan(&net, Strategy::Pbqp)?;
    let weights = Weights::random(&net, 33);
    let input = Tensor::random(64, 28, 28, Layout::Chw, 44);
    let out = Executor::new(&net, &plan, &registry, &weights).run(&input, 1)?;
    let oracle = reference_forward(&net, &weights, &input);
    println!("sparse plan verified: max |Δ| = {:.2e}", out.max_abs_diff(&oracle)?);
    Ok(())
}
