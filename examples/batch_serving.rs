//! Batched serving through the front door: one shared [`Engine`], one
//! [`Session`] per worker thread.
//!
//! A serving process receives many requests for the same model. The
//! compiler pays the PBQP solve once (and memoizes it by artifact
//! fingerprint), the engine shares the compiled schedule across threads,
//! and each worker's session serves its slice of the batch out of its
//! own warmed buffers — bit-identical to the serial reference, as
//! always. The low-level `Executor` batch API remains available and is
//! cross-checked at the end.
//!
//! ```sh
//! cargo run --release --example batch_serving
//! ```

use std::time::Instant;

use pbqp_dnn::prelude::*;
use pbqp_dnn::runtime::Executor;

fn main() -> Result<(), Error> {
    // The served model: a miniature inception module — a branching DAG,
    // so the wavefront scheduler has real inter-op parallelism to find.
    let net = models::micro_inception();
    let weights = Weights::random(&net, 0x5EED);

    // 1. Compile once; recompiles of a known model are fingerprint-keyed
    //    cache hits.
    let compiler = Compiler::new(CompileOptions::new());
    let t0 = Instant::now();
    let model = compiler.compile(&net, &weights)?;
    let cold_us = t0.elapsed().as_secs_f64() * 1e6;
    let t1 = Instant::now();
    let _again = compiler.compile(&net, &weights)?;
    let warm_us = t1.elapsed().as_secs_f64() * 1e6;
    let (hits, misses) = compiler.cache_stats();
    println!("compile: cold {cold_us:.0} µs, cached {warm_us:.1} µs ({hits} hit / {misses} miss)");
    println!("{}", model.plan());

    // 2. A batch of requests, fanned over worker threads — one session
    //    each, no locks, no shared mutable state.
    let engine = model.engine();
    let (c, h, w) = net.infer_shapes()?[0];
    let batch: Vec<Tensor> =
        (0..16).map(|i| Tensor::random(c, h, w, Layout::Chw, 40 + i)).collect();
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(4);
    let per = batch.len().div_ceil(workers);

    let t2 = Instant::now();
    let outputs: Vec<Tensor> = std::thread::scope(|scope| {
        let handles: Vec<_> = batch
            .chunks(per)
            .map(|chunk| {
                let engine = engine.clone();
                scope.spawn(move || {
                    let mut session = engine.session();
                    let mut outs = Vec::new();
                    session.infer_batch(chunk, &mut outs).expect("serving failed");
                    outs
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("worker panicked")).collect()
    });
    let batch_ms = t2.elapsed().as_secs_f64() * 1e3;
    println!("served {} requests on {workers} sessions in {batch_ms:.2} ms", outputs.len());

    // 3. Wavefront parallelism inside one session, checked bit-for-bit
    //    against the serial session.
    let mut serial = engine.session();
    let mut wave = engine.session();
    wave.set_parallelism(Parallelism::serial().with_inter_op(4));
    let a = serial.infer_new(&batch[0])?;
    let b = wave.infer_new(&batch[0])?;
    assert_eq!(a.data(), b.data());
    println!("wavefront session is bit-identical to the serial session");

    // 4. And the power-user surface agrees exactly: the model's own plan
    //    run through the low-level Executor batch API.
    let registry = model.registry();
    let executor = Executor::new(&net, model.plan(), registry, &weights);
    let reference = executor.run_batch(&batch, Parallelism::available())?;
    for (front, low) in outputs.iter().zip(&reference) {
        assert_eq!(front.data(), low.data());
    }
    println!("all {} front-door outputs match the low-level executor bit-for-bit", outputs.len());
    Ok(())
}
