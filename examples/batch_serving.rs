//! Batched serving through the gateway: one [`Gateway`] coalescing many
//! concurrent callers into fused batch inference under a latency SLO.
//!
//! A serving process receives many requests for the same model. The
//! compiler pays the PBQP solve once (and memoizes it by artifact
//! fingerprint); the gateway admits requests into a bounded queue,
//! coalesces whatever arrives inside the batching window into one fused
//! [`Session::infer_batch`] call, and answers every ticket with the
//! generation that admitted it — bit-identical to the serial reference,
//! as always. The manual thread-per-slice pattern this example used to
//! demonstrate is still available (the gateway is built on it), but the
//! gateway is the front door for multi-tenant serving.
//!
//! ```sh
//! cargo run --release --example batch_serving
//! ```

use std::time::{Duration, Instant};

use pbqp_dnn::prelude::*;
use pbqp_dnn_gateway::{BatchConfig, Gateway, GatewayError};

fn main() -> Result<(), Error> {
    // The served model: a miniature inception module — a branching DAG,
    // so the wavefront scheduler has real inter-op parallelism to find.
    let net = models::micro_inception();
    let weights = Weights::random(&net, 0x5EED);

    // 1. Compile once; recompiles of a known model are fingerprint-keyed
    //    cache hits.
    let compiler = Compiler::new(CompileOptions::new());
    let t0 = Instant::now();
    let model = compiler.compile(&net, &weights)?;
    let cold_us = t0.elapsed().as_secs_f64() * 1e6;
    let t1 = Instant::now();
    let _again = compiler.compile(&net, &weights)?;
    let warm_us = t1.elapsed().as_secs_f64() * 1e6;
    let (hits, misses) = compiler.cache_stats();
    println!("compile: cold {cold_us:.0} µs, cached {warm_us:.1} µs ({hits} hit / {misses} miss)");
    println!("{}", model.plan());

    // 2. Register the model under its artifact fingerprint. The batching
    //    knobs are per model: a flush fires when `max_batch` requests
    //    have coalesced or when the oldest waiter has been queued for
    //    the window, whichever comes first — so the window is the
    //    batching tax on p99, not a fixed delay on every request.
    let gateway = Gateway::with_workers(2);
    let fp = gateway.register_with(
        &model,
        BatchConfig::new()
            .with_max_batch(8)
            .with_window(Duration::from_micros(500))
            .with_queue_cap(64),
    );
    println!("registered fingerprint {fp:#018x}");

    // 3. Concurrent callers submit and block on their tickets — the
    //    gateway coalesces across them. Here 4 caller threads each send
    //    16 requests; every response carries its serving provenance.
    let (c, h, w) = net.infer_shapes()?[0];
    let inputs: Vec<Tensor> =
        (0..16).map(|i| Tensor::random(c, h, w, Layout::Chw, 40 + i)).collect();
    let t2 = Instant::now();
    let served: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(|| {
                    inputs
                        .iter()
                        .map(|input| {
                            let ticket = gateway
                                .submit(fp, input.clone())
                                .expect("queue_cap admits this load");
                            ticket.wait().expect("request served")
                        })
                        .count()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("caller panicked")).sum()
    });
    let batch_ms = t2.elapsed().as_secs_f64() * 1e3;
    println!("served {served} requests through the gateway in {batch_ms:.2} ms");

    // 4. The stats ledger says how much coalescing actually happened:
    //    the batch-size histogram, flush-cause split and exact latency
    //    percentiles — the same numbers BENCH_PR8 reports.
    let stats = gateway.stats(fp).expect("registered");
    println!(
        "batches {} (by size {}, by deadline {}), mean batch {:.2}, \
         p50 {} µs, p99 {} µs, histogram {:?}",
        stats.batches,
        stats.flushed_by_size,
        stats.flushed_by_deadline,
        stats.mean_batch_size(),
        stats.p50_latency_us,
        stats.p99_latency_us,
        stats.batch_histogram,
    );
    assert_eq!(stats.served, served as u64);
    assert_eq!(stats.rejected, 0);

    // 5. Hot-swap: re-registering the same fingerprint bumps the model
    //    generation with zero dropped requests; every response names the
    //    generation that admitted it.
    let swapped = compiler.compile(&net, &Weights::random(&net, 0xF00D))?;
    assert_eq!(swapped.fingerprint(), fp, "weights do not perturb the fingerprint");
    gateway.register(&swapped);
    let response = gateway.infer(fp, inputs[0].clone()).expect("served by the new generation");
    println!(
        "hot-swapped to generation {} (batch of {}, {} µs)",
        response.generation,
        response.batch_size,
        response.latency.as_micros(),
    );
    assert_eq!(response.generation, 1);

    // 6. Bit-exactness through the gateway: the coalesced path must
    //    match a fresh single-request session of the same generation.
    let reference = swapped.engine().infer(&inputs[0])?;
    assert_eq!(response.output.data(), reference.data());
    println!("gateway output matches the single-request engine bit-for-bit");

    // 7. Backpressure is typed, not silent: past `queue_cap` the gateway
    //    sheds with `Overloaded` instead of buffering unboundedly.
    let tiny = Gateway::with_workers(1);
    tiny.register_with(&model, BatchConfig::new().with_queue_cap(1).with_max_batch(1));
    let _held = tiny.submit(fp, inputs[0].clone()).expect("first fits");
    let mut sheds = 0;
    for input in &inputs {
        match tiny.submit(fp, input.clone()) {
            Err(GatewayError::Overloaded { queued, limit, .. }) => {
                if sheds == 0 {
                    println!("backpressure: shed with Overloaded ({queued} queued, limit {limit})");
                }
                sheds += 1;
            }
            Ok(ticket) => drop(ticket.wait()),
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(sheds > 0, "the tiny queue must shed under this burst");
    assert!(gateway.health(fp).expect("registered").is_pristine());
    Ok(())
}
