//! Batched serving: the parallel execution engine end to end.
//!
//! A serving process receives many requests for the same model. This
//! example shows the three pieces the engine adds on top of the paper's
//! optimizer: the plan cache (solve once, serve forever), the batched
//! executor (one schedule amortized over N inputs, fanned over worker
//! threads), and the wavefront scheduler (independent inception branches
//! executed concurrently) — all bit-identical to the serial reference.
//!
//! ```sh
//! cargo run --release --example batch_serving
//! ```

use std::time::Instant;

use pbqp_dnn_cost::{AnalyticCost, MachineModel};
use pbqp_dnn_graph::models;
use pbqp_dnn_primitives::registry::{full_library, Registry};
use pbqp_dnn_runtime::{Executor, Parallelism, Weights};
use pbqp_dnn_select::{Optimizer, PlanCache, Strategy};
use pbqp_dnn_tensor::{Layout, Tensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The served model: a miniature inception module — a branching DAG,
    // so the wavefront scheduler has real inter-op parallelism to find.
    let net = models::micro_inception();
    let registry = Registry::new(full_library());
    let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
    let optimizer = Optimizer::new(&registry, &cost);

    // 1. The plan cache: the first request pays the PBQP solve, every
    //    later request is a fingerprint + map lookup.
    let cache = PlanCache::new();
    let t0 = Instant::now();
    cache.plan(&optimizer, &net, Strategy::Pbqp)?;
    let cold_us = t0.elapsed().as_secs_f64() * 1e6;
    let t1 = Instant::now();
    let plan = cache.plan(&optimizer, &net, Strategy::Pbqp)?;
    let warm_us = t1.elapsed().as_secs_f64() * 1e6;
    println!(
        "plan cache: cold {cold_us:.0} µs, warm {warm_us:.1} µs ({} hit / {} miss)",
        cache.hits(),
        cache.misses()
    );
    println!("{plan}");

    // 2. A batch of requests, served in one call.
    let weights = Weights::random(&net, 0x5EED);
    let executor = Executor::new(&net, &plan, &registry, &weights);
    let (c, h, w) = net.infer_shapes()?[0];
    let batch: Vec<Tensor> =
        (0..16).map(|i| Tensor::random(c, h, w, Layout::Chw, 40 + i)).collect();

    let par = Parallelism::available();
    let t2 = Instant::now();
    let outputs = executor.run_batch(&batch, par)?;
    let batch_ms = t2.elapsed().as_secs_f64() * 1e3;
    println!("run_batch: {} items in {batch_ms:.2} ms ({par})", outputs.len());

    // 3. The wavefront scheduler on a single request, checked
    //    bit-for-bit against the serial reference executor.
    let serial = executor.run_with(&batch[0], Parallelism::serial())?;
    let wavefront = executor.run_with(&batch[0], par.with_inter_op(4))?;
    assert_eq!(serial.data(), wavefront.data());
    println!("wavefront output is bit-identical to the serial reference");

    // And every batched output matches its serial counterpart exactly.
    for (input, out) in batch.iter().zip(&outputs) {
        assert_eq!(executor.run(input, 1)?.data(), out.data());
    }
    println!("all {} batched outputs are bit-identical to serial runs", outputs.len());
    Ok(())
}
