//! Edge deployment: solve on the build host, serve on the edge.
//!
//! The paper's pitch is "solve once, run the optimal plan forever". This
//! example plays both ends of that pipeline in one process, with the
//! artifact bytes as the only thing crossing the boundary:
//!
//! * the **build host** compiles a mixed-precision model for the
//!   embedded machine model — profiling the full library, solving the
//!   PBQP instance, pre-quantizing the int8 weights — and serializes the
//!   result;
//! * the **edge host** knows nothing but the bytes: it loads the
//!   artifact (fingerprint-validated), never profiles, never solves, and
//!   serves out of a warmed zero-alloc session.
//!
//! ```sh
//! cargo run --release --example edge_deploy
//! ```

use std::time::Instant;

use pbqp_dnn::prelude::*;

/// What the build host ships: nothing but bytes.
fn build_host(net: &DnnGraph, weights: &Weights) -> Result<Vec<u8>, Error> {
    // The build host targets the *edge* machine model: costs are priced
    // for where the plan will run, not where it is solved (§5.1's
    // cross-platform deployments).
    let options = CompileOptions::new()
        .machine(MachineModel::arm_a57_like())
        .threads(4)
        .mixed_precision(true)
        .strategy(Strategy::Pbqp);
    let t0 = Instant::now();
    let model = Compiler::new(options).compile(net, weights)?;
    let compile_ms = t0.elapsed().as_secs_f64() * 1e3;

    let plan = model.plan();
    println!("[build] solved in {compile_ms:.1} ms: {plan}");
    println!(
        "[build] {} int8 layers, {} quant/dequant edges, {} pooled activation slots",
        plan.int8_layers().len(),
        plan.quant_edge_count(),
        model.activation_slots(),
    );

    let mut artifact = Vec::new();
    model.save(&mut artifact)?;
    println!(
        "[build] artifact: {} bytes (fingerprint {:#018x}) — ship it",
        artifact.len(),
        model.fingerprint()
    );
    Ok(artifact)
}

/// What the edge host runs: load, validate, serve. No optimizer, no cost
/// model, no solver anywhere in this function.
fn edge_host(artifact: &[u8], requests: &[Tensor]) -> Result<Vec<Tensor>, Error> {
    let t0 = Instant::now();
    let model = CompiledModel::load(&mut &artifact[..])?;
    let load_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "[edge]  loaded + schedule recompiled in {load_ms:.2} ms ({} nodes, library {:?})",
        model.graph().len(),
        model.library()
    );

    let engine = model.engine();
    let mut session = engine.session();
    let mut outputs = Vec::new();
    let mut out = Tensor::empty();
    for (i, request) in requests.iter().enumerate() {
        let t = Instant::now();
        session.infer(request, &mut out)?;
        let us = t.elapsed().as_secs_f64() * 1e6;
        let tag = if i == 0 { " (warmup — settles buffers)" } else { " (zero-alloc)" };
        println!("[edge]  request {i}: {us:.0} µs{tag}");
        outputs.push(out.clone());
    }
    Ok(outputs)
}

fn main() -> Result<(), Error> {
    let net = models::micro_mixed();
    let weights = Weights::random(&net, 0xED6E);

    // ---- build host ---------------------------------------------------
    let artifact = build_host(&net, &weights)?;

    // Tampered artifacts never reach serving: the whole stream is
    // checksummed (with graph-fingerprint revalidation behind it), so a
    // flipped bit anywhere — header, plan, weight taps — is refused.
    let mut tampered = artifact.clone();
    tampered[15] ^= 0xFF;
    let refused = CompiledModel::load(&mut tampered.as_slice()).unwrap_err();
    println!("[edge]  tampered artifact refused: {refused}");

    // ---- edge host ----------------------------------------------------
    let (c, h, w) = net.infer_shapes()?[0];
    let requests: Vec<Tensor> =
        (0..4).map(|i| Tensor::random(c, h, w, Layout::Chw, 100 + i)).collect();
    let outputs = edge_host(&artifact, &requests)?;

    // The shipped plan computes the same function the build host's
    // weights define — checked against the independent oracle.
    let oracle = reference_forward(&net, &weights, &requests[0]);
    let diff = outputs[0].max_abs_diff(&oracle)?;
    let maxabs = oracle.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    println!("edge output vs f32 oracle: max |err| {diff:.4} (range ±{maxabs:.2})");
    assert!(diff < 0.05 * maxabs + 0.05, "int8 error must stay within quantization budget");
    println!("shippable-plan story holds: solve once on the build host, serve forever on the edge");
    Ok(())
}
