//! Embedded vision deployment — the paper's motivating scenario (§1).
//!
//! Optimizes AlexNet for two platforms (a desktop-class 8-wide-vector
//! machine and an embedded 4-wide-vector machine with a small cache) and
//! prints the per-layer PBQP selections side by side, reproducing the
//! Figure 4 comparison: im2 for the strided conv1 everywhere, 2-D Winograd
//! on the big-cache machine vs mostly 1-D Winograd on the embedded one.
//!
//! ```sh
//! cargo run --release --example embedded_vision
//! ```

use pbqp_dnn::cost::{AnalyticCost, MachineModel};
use pbqp_dnn::graph::models;
use pbqp_dnn::primitives::registry::{full_library, Registry};
use pbqp_dnn::select::{AssignmentKind, Optimizer, Strategy};
use pbqp_dnn::Error;

fn main() -> Result<(), Error> {
    let registry = Registry::new(full_library());
    let net = models::alexnet();

    let machines = [MachineModel::intel_haswell_like(), MachineModel::arm_a57_like()];
    let mut columns = Vec::new();
    for machine in &machines {
        // Multithreaded deployment, as in Figure 4.
        let cost = AnalyticCost::new(machine.clone(), machine.cores);
        let optimizer = Optimizer::new(&registry, &cost);
        let plan = optimizer.plan(&net, Strategy::Pbqp)?;
        assert_eq!(plan.optimal, Some(true));
        let sum2d = optimizer.plan(&net, Strategy::Sum2d)?;
        println!(
            "{}: PBQP {:.1} ms vs sum2d {:.1} ms ({:.1}x), {} layout transforms",
            machine,
            plan.predicted_us / 1000.0,
            sum2d.predicted_us / 1000.0,
            sum2d.predicted_us / plan.predicted_us,
            plan.transform_count()
        );
        columns.push(plan);
    }

    println!("\nPer-layer selections (multithreaded), after Figure 4:");
    println!("{:10} {:32} {:32}", "layer", machines[0].name, machines[1].name);
    for node in net.conv_nodes() {
        let name = &net.layer(node).name;
        let cell = |plan: &pbqp_dnn::select::ExecutionPlan| match plan.assignment(node) {
            AssignmentKind::Conv { primitive, input_repr, output_repr, .. } => {
                format!("{primitive} [{input_repr}->{output_repr}]")
            }
            _ => unreachable!("conv node"),
        };
        println!("{:10} {:32} {:32}", name, cell(&columns[0]), cell(&columns[1]));
    }

    // The headline cross-platform effect: count 1-D vs 2-D Winograd picks.
    for (machine, plan) in machines.iter().zip(&columns) {
        let (mut one_d, mut two_d) = (0, 0);
        for (_, prim) in plan.selected_primitives() {
            if prim.starts_with("wino1d") {
                one_d += 1;
            } else if prim.starts_with("wino2d") {
                two_d += 1;
            }
        }
        println!("{}: {} 1-D winograd, {} 2-D winograd", machine.name, one_d, two_d);
    }
    Ok(())
}
