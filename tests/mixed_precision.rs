//! Mixed-precision selection, end to end: with the int8 primitives and
//! quantize/dequantize DT edges in the search space, one PBQP solve over
//! a published model emits a plan that mixes f32 and int8 layers — int8
//! where the compute win dominates, f32 where dequantization edge costs
//! (or a stronger f32 algorithm like Winograd) win — and that plan is
//! never predicted slower than the f32-only optimum.

use pbqp_dnn::cost::{AnalyticCost, MachineModel};
use pbqp_dnn::graph::models;
use pbqp_dnn::primitives::registry::{full_library, mixed_precision_library, op_library, Registry};
use pbqp_dnn::select::{AssignmentKind, Optimizer, Strategy};
use pbqp_dnn::tensor::transform::ReprTransform;
use pbqp_dnn::tensor::DType;

/// The acceptance demo of first-class operator selection: with int8 op
/// kernels in the candidate sets, an int8 island on the ARM machine model
/// spans `conv → relu → pool → conv` with **zero** interior
/// quantize/dequantize edges — and the quant-edge count strictly drops
/// against a PR 3-style registry whose non-conv candidates are f32-only
/// (the old "dummy nodes force f32" behavior, which made consecutive int8
/// convs pay a dequant/requant round trip through every activation
/// layer).
#[test]
fn int8_island_spans_relu_and_pool_without_interior_conversions() {
    let net = models::micro_resnet();
    let cost = AnalyticCost::new(MachineModel::arm_a57_like(), 1);
    let mixed_reg = Registry::new(mixed_precision_library());
    let opt = Optimizer::new(&mixed_reg, &cost);
    let plan = opt.plan(&net, Strategy::Pbqp).unwrap();
    assert_eq!(plan.optimal, Some(true));

    // The whole stem chain is assigned int8 kernels…
    let chain = ["conv1", "relu1", "pool1", "conv2"];
    for name in chain {
        let node = net.find(name).unwrap();
        assert_eq!(
            plan.assignment(node).input_repr().dtype,
            DType::I8,
            "{name} left the int8 island\n{plan}"
        );
    }
    assert!(!plan.int8_op_nodes().is_empty(), "relu/pool must carry int8 kernels\n{plan}");

    // …and the island's interior edges carry no conversions at all: the
    // representations agree end to end.
    for pair in chain.windows(2) {
        let from = net.find(pair[0]).unwrap();
        let to = net.find(pair[1]).unwrap();
        let edge = plan
            .edges
            .iter()
            .find(|e| e.from == from && e.to == to)
            .expect("island edge is a graph edge");
        assert!(
            edge.chain.is_empty(),
            "{} -> {} should need no conversion, got {:?}",
            pair[0],
            pair[1],
            edge.chain
        );
    }

    // PR 3-style plans — same int8 convolutions, but f32-only op kernels
    // (the retired dummy-node behavior) — must pay strictly more
    // quantize/dequantize edges, and the op-selecting plan can never be
    // predicted slower (its search space is a superset).
    let pr3_reg = Registry::with_op_kernels(mixed_precision_library(), op_library());
    let pr3 = Optimizer::new(&pr3_reg, &cost).plan(&net, Strategy::Pbqp).unwrap();
    assert!(
        plan.quant_edge_count() < pr3.quant_edge_count(),
        "op selection must shed quant edges: {} vs PR 3-style {}",
        plan.quant_edge_count(),
        pr3.quant_edge_count()
    );
    assert!(plan.predicted_us <= pr3.predicted_us + 1e-6);

    // The PBQP solve still beats every baseline strategy on the residual
    // network.
    let mut baselines = vec![
        Strategy::Sum2d,
        Strategy::LocalOptimalChw,
        Strategy::CaffeLike,
        Strategy::VendorLike { vector_width: 4 },
        Strategy::PbqpHeuristic,
    ];
    baselines.extend(Strategy::family_bars());
    for b in baselines {
        let base = opt.plan(&net, b).unwrap();
        assert!(
            plan.predicted_us <= base.predicted_us + 1e-6,
            "{}: PBQP {:.1} vs {:.1}",
            b.label(),
            plan.predicted_us,
            base.predicted_us
        );
    }
}

/// With the SIMD micro-kernels live (runtime dispatch, no override),
/// every serving surface of a mixed-precision model — the raw serial
/// `Executor`, a wavefront-parallel `Session::infer`, and the one-shot
/// `Engine::infer` — produces bit-identical activations: dispatch picks
/// one kernel per process and the int8 kernels are order-exact, so
/// precision islands cannot introduce cross-surface drift.
#[test]
fn session_engine_and_executor_agree_bit_for_bit_with_simd_dispatch_active() {
    use pbqp_dnn::gemm::arch;
    use pbqp_dnn::prelude::*;
    use pbqp_dnn::runtime::Executor;
    use pbqp_dnn::tensor::rng::SplitMix64;

    assert_eq!(arch::active_isa(), arch::features().best(), "dispatch must be live");

    let net = models::micro_resnet();
    let mut rng = SplitMix64::new(0x51D_CAFE);
    let weights = Weights::random(&net, rng.next_u64());
    let options = CompileOptions::new().machine(MachineModel::arm_a57_like()).mixed_precision(true);
    let model = Compiler::new(options).compile(&net, &weights).expect("compiles");
    assert!(!model.plan().int8_layers().is_empty(), "fixture must select int8 layers");

    let exec = Executor::new(model.graph(), model.plan(), model.registry(), model.weights());
    let engine = model.engine().with_parallelism(Parallelism::serial().with_inter_op(4));
    let mut session = engine.session();
    let (c, h, w) = net.infer_shapes().unwrap()[0];
    let mut out = Tensor::empty();
    for i in 0..4 {
        let input = Tensor::random(c, h, w, Layout::Chw, rng.next_u64());
        let serial = exec.run(&input, 1).unwrap();
        session.infer(&input, &mut out).expect("session serves");
        assert_eq!(out.data(), serial.data(), "input {i}: session diverged from serial executor");
        assert_eq!(engine.infer(&input).unwrap().data(), serial.data(), "input {i}: engine");
    }
}

#[test]
fn built_in_models_get_genuinely_mixed_plans() {
    // Two (model, machine) pairs known to split: on the ARM model AlexNet
    // keeps conv2 in f32 Winograd while the GEMM-bound layers go int8;
    // on the Haswell model GoogleNet mixes across the inception towers.
    let cases: Vec<(&str, pbqp_dnn::graph::DnnGraph, MachineModel)> = vec![
        ("AlexNet", models::alexnet(), MachineModel::arm_a57_like()),
        ("GoogleNet", models::googlenet(), MachineModel::intel_haswell_like()),
    ];
    for (name, net, machine) in cases {
        let mixed_reg = Registry::new(mixed_precision_library());
        let cost = AnalyticCost::new(machine, 1);
        let opt = Optimizer::new(&mixed_reg, &cost);
        let plan = opt.plan(&net, Strategy::Pbqp).unwrap();
        assert_eq!(plan.optimal, Some(true), "{name}");
        assert!(
            plan.is_mixed_precision(),
            "{name}: expected both f32 and int8 selections, got {} int8 of {} convs",
            plan.int8_layers().len(),
            plan.selected_primitives().len()
        );
        assert!(plan.quant_edge_count() >= 2, "{name}: int8 islands need quant/dequant edges");

        // Legalization chains are representation-consistent, including
        // across the precision boundary.
        for e in &plan.edges {
            let mut cur = plan.assignment(e.from).output_repr();
            for hop in &e.chain {
                assert_eq!(hop.from(), cur, "{name}: broken chain");
                cur = hop.to();
            }
            assert_eq!(cur, plan.assignment(e.to).input_repr(), "{name}");
        }

        // Every int8 layer is bracketed correctly: anything feeding a
        // quantized conv from an f32 producer must pass a Quantize hop.
        for e in &plan.edges {
            let to_dtype = plan.assignment(e.to).input_repr().dtype;
            let from_dtype = plan.assignment(e.from).output_repr().dtype;
            if from_dtype == DType::F32 && to_dtype == DType::I8 {
                assert!(
                    e.chain.iter().any(|h| matches!(h, ReprTransform::Quantize(_))),
                    "{name}: f32→i8 edge without a quantize hop"
                );
            }
        }

        // The superset search can never be predicted slower than the
        // f32-only optimum over the same cost source.
        let f32_reg = Registry::new(full_library());
        let f32_plan = Optimizer::new(&f32_reg, &cost).plan(&net, Strategy::Pbqp).unwrap();
        assert!(
            plan.predicted_us <= f32_plan.predicted_us + 1e-6,
            "{name}: mixed {} µs vs f32 {} µs",
            plan.predicted_us,
            f32_plan.predicted_us
        );

        // Sanity on the layers the solver kept in f32: each is a genuine
        // f32 primitive with a finite profiled cost. (Their *optimality*
        // against int8 alternatives is exactly what `optimal ==
        // Some(true)` certifies above — the solver proved no flip of any
        // subset of layers, edge costs included, can do better.)
        let int8 = plan.int8_layers();
        for (node, prim) in plan.selected_primitives() {
            if int8.contains(&node) {
                continue;
            }
            if let AssignmentKind::Conv { cost_us, .. } = plan.assignment(node) {
                let d = mixed_reg.by_name(prim).unwrap().descriptor();
                assert_eq!(d.input_dtype, DType::F32);
                assert!(cost_us.is_finite());
            }
        }
    }
}
