//! Proof of the zero-allocation steady state: after one warmup run, the
//! serving APIs (`run_into` / `run_batch_into` with serial parallelism)
//! perform **zero** heap allocations per forward pass on micro-AlexNet —
//! activations come from liveness-pooled slots, primitive scratch from
//! bump arenas, and outputs land in caller-recycled tensors.
//!
//! The counter is a `#[global_allocator]` wrapper over the system
//! allocator (no external deps). Counting is **scoped to the test
//! thread**: libtest's harness main thread waits on an mpmc channel
//! while the test runs, and its parking path lazily allocates (waker
//! registration, thread-local context) at nondeterministic times — those
//! harness allocations are not the serving loop's and must not fail the
//! proof. Everything runs inside a single `#[test]` so no concurrent
//! test thread measures.

use std::alloc::{GlobalAlloc, Layout as AllocLayout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

use pbqp_dnn::cost::{AnalyticCost, MachineModel};
use pbqp_dnn::graph::models::{micro_alexnet, micro_mixed, micro_resnet};
use pbqp_dnn::primitives::registry::{full_library, mixed_precision_library, Registry};
use pbqp_dnn::runtime::{Executor, Parallelism, Weights};
use pbqp_dnn::select::{Optimizer, Strategy};
use pbqp_dnn::tensor::{Layout, Tensor};

/// Counts every allocation and reallocation performed by threads that
/// opted in via [`COUNTING`] (the test thread; serving is serial, so it
/// is the only thread whose allocations belong to the proof).
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Whether allocations on this thread count. Const-initialized so
    /// reading it inside the allocator never itself allocates.
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn note_alloc() {
    if COUNTING.try_with(Cell::get).unwrap_or(false) {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: AllocLayout) -> *mut u8 {
        note_alloc();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: AllocLayout) -> *mut u8 {
        note_alloc();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: AllocLayout, new_size: usize) -> *mut u8 {
        note_alloc();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: AllocLayout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> usize {
    ALLOCS.load(Ordering::SeqCst)
}

#[test]
fn steady_state_serving_performs_zero_heap_allocations() {
    COUNTING.with(|c| c.set(true));
    let net = micro_alexnet();
    let reg = Registry::new(full_library());
    let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
    let opt = Optimizer::new(&reg, &cost);
    let weights = Weights::random(&net, 0x5EED);
    let (c, h, w) = net.infer_shapes().expect("valid model")[0];
    let input = Tensor::random(c, h, w, Layout::Chw, 7);
    let inputs: Vec<Tensor> =
        (0..3).map(|i| Tensor::random(c, h, w, Layout::Chw, 20 + i)).collect();

    // The paper's full PBQP selection plus the vendor/Caffe baselines —
    // zero-alloc steady state must hold whatever primitives get picked.
    for strategy in [Strategy::Pbqp, Strategy::CaffeLike, Strategy::VendorLike { vector_width: 8 }]
    {
        let plan = opt.plan(&net, strategy).expect("plans");
        let exec = Executor::new(&net, &plan, &reg, &weights);
        let mut out = Tensor::empty();
        let mut outs = Vec::new();

        // Warmup: compiles the schedule, builds the pooled buffers and
        // settles every arena watermark and output capacity.
        let expected = exec.run(&input, 1).expect("warmup run");
        exec.run_into(&input, &mut out, 1).expect("warmup run_into");
        exec.run_batch_into(&inputs, &mut outs, Parallelism::serial()).expect("warmup batch");

        // Steady state: repeated single-input serving.
        let before = allocs();
        for _ in 0..5 {
            exec.run_into(&input, &mut out, 1).expect("steady run_into");
        }
        let run_allocs = allocs() - before;
        assert_eq!(
            run_allocs,
            0,
            "{}: {run_allocs} allocations across 5 steady-state run_into calls",
            strategy.label()
        );

        // Steady state: repeated batch serving (serial mode — thread
        // fan-out necessarily allocates stacks, so it is exercised by the
        // equivalence suite instead).
        let before = allocs();
        for _ in 0..3 {
            exec.run_batch_into(&inputs, &mut outs, Parallelism::serial())
                .expect("steady run_batch_into");
        }
        let batch_allocs = allocs() - before;
        assert_eq!(
            batch_allocs,
            0,
            "{}: {batch_allocs} allocations across 3 steady-state run_batch_into calls",
            strategy.label()
        );

        // The allocation-free path must still compute the right answer.
        assert_eq!(out.data(), expected.data(), "{}", strategy.label());
        assert_eq!(out.dims(), expected.dims());

        // The allocating convenience wrapper stays cheap: its only
        // steady-state heap traffic is the returned output tensor.
        let before = allocs();
        let fresh = exec.run(&input, 1).expect("steady run");
        let wrapper_allocs = allocs() - before;
        assert!(
            wrapper_allocs <= 2,
            "{}: plain run should only allocate its output, saw {wrapper_allocs}",
            strategy.label()
        );
        assert_eq!(fresh.data(), expected.data());
    }

    // Mixed precision: the int8 path (quantize edge → int8 conv with
    // dynamic requantization → dequantize edge) must uphold the same
    // zero-allocation contract — quantized patch matrices and i32
    // accumulators come from the workspace's typed arenas, and weight
    // quantization happened once at schedule-compile time.
    let net = micro_mixed();
    let reg = Registry::new(mixed_precision_library());
    let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
    let opt = Optimizer::new(&reg, &cost);
    let plan = opt.plan(&net, Strategy::Pbqp).expect("plans");
    assert!(
        !plan.int8_layers().is_empty() && plan.quant_edge_count() >= 2,
        "precondition: the mixed plan must contain an int8 layer with quant/dequant edges\n{plan}"
    );
    let weights = Weights::random(&net, 0x1817);
    let exec = Executor::new(&net, &plan, &reg, &weights);
    let input = Tensor::random(16, 20, 20, Layout::Chw, 77);
    let mut out = Tensor::empty();
    let expected = exec.run(&input, 1).expect("warmup run");
    exec.run_into(&input, &mut out, 1).expect("warmup run_into");

    let before = allocs();
    for _ in 0..5 {
        exec.run_into(&input, &mut out, 1).expect("steady run_into");
    }
    let run_allocs = allocs() - before;
    assert_eq!(
        run_allocs, 0,
        "mixed-precision plan: {run_allocs} allocations across 5 steady-state run_into calls"
    );
    assert_eq!(out.data(), expected.data(), "allocation-free int8 path must stay correct");

    // ---- The front door upholds the same contract -----------------------
    // Compiler → CompiledModel → Engine → Session: a warmed session's
    // `infer` / `infer_batch` must be allocation-free too, for a plain
    // f32 model and for a mixed-precision one loaded from artifact bytes
    // (the shippable-plan path, complete with restored int8 weight
    // images).
    use pbqp_dnn::prelude::{CompileOptions, CompiledModel, Compiler};

    let f32_net = micro_alexnet();
    let f32_weights = Weights::random(&f32_net, 0x5EED);
    let f32_model =
        Compiler::new(CompileOptions::new()).compile(&f32_net, &f32_weights).expect("compiles");

    let mixed_model = {
        let m = Compiler::new(CompileOptions::new().mixed_precision(true))
            .compile(&net, &weights)
            .expect("compiles");
        assert!(!m.plan().int8_layers().is_empty(), "precondition: int8 selection");
        let mut bytes = Vec::new();
        m.save(&mut bytes).expect("saves");
        CompiledModel::load(&mut bytes.as_slice()).expect("loads")
    };

    // The int8-island plan: on the ARM machine model micro-resnet's stem
    // (conv → relu → pool → conv) stays quantized end to end — the relu
    // and pool run int8 op kernels, with **no** interior quantize or
    // dequantize conversions — and the residual add merges two f32
    // branches. A warmed session serving this plan must be allocation-free
    // like every other: int8 activations live in dtype-segregated pooled
    // slots and the op kernels carve from the workspace arenas.
    let island_net = micro_resnet();
    let island_weights = Weights::random(&island_net, 0x2026);
    let island_model = Compiler::new(
        CompileOptions::new().machine(MachineModel::arm_a57_like()).mixed_precision(true),
    )
    .compile(&island_net, &island_weights)
    .expect("compiles");
    {
        let plan = island_model.plan();
        assert!(
            !plan.int8_op_nodes().is_empty(),
            "precondition: relu/pool must join the int8 island\n{plan}"
        );
        for pair in ["conv1", "relu1", "pool1", "conv2"].windows(2) {
            let from = island_net.find(pair[0]).unwrap();
            let to = island_net.find(pair[1]).unwrap();
            let edge = plan.edges.iter().find(|e| e.from == from && e.to == to).unwrap();
            assert!(
                edge.chain.is_empty(),
                "precondition: island interior must carry no conversions"
            );
        }
    }

    for (label, model, dims) in [
        ("front-door f32", &f32_model, f32_net.infer_shapes().unwrap()[0]),
        ("front-door mixed (loaded from artifact)", &mixed_model, (16, 20, 20)),
        ("front-door int8 island (micro-resnet, ARM plan)", &island_model, (16, 48, 48)),
    ] {
        let (c, h, w) = dims;
        let engine = model.engine();
        let mut session = engine.session();
        let input = Tensor::random(c, h, w, Layout::Chw, 0xAB);
        let inputs: Vec<Tensor> =
            (0..3).map(|i| Tensor::random(c, h, w, Layout::Chw, 0xB0 + i)).collect();
        let mut out = Tensor::empty();
        let mut outs = Vec::new();

        // Warmup settles the session's buffers and output capacities.
        session.infer(&input, &mut out).expect("warmup infer");
        session.infer_batch(&inputs, &mut outs).expect("warmup infer_batch");
        let expected = engine.infer(&input).expect("reference");

        let before = allocs();
        for _ in 0..5 {
            session.infer(&input, &mut out).expect("steady infer");
        }
        let session_allocs = allocs() - before;
        assert_eq!(
            session_allocs, 0,
            "{label}: {session_allocs} allocations across 5 steady-state Session::infer calls"
        );

        let before = allocs();
        for _ in 0..3 {
            session.infer_batch(&inputs, &mut outs).expect("steady infer_batch");
        }
        let batch_allocs = allocs() - before;
        assert_eq!(
            batch_allocs, 0,
            "{label}: {batch_allocs} allocations across 3 steady-state Session::infer_batch calls"
        );

        // The gateway's flush path: caller-owned output slots through
        // `infer_batch_into`, fused conv steps and all. Smaller batches
        // reuse the warmed capacity, so a gateway flushing *up to* the
        // warmed batch size stays allocation-free too.
        let before = allocs();
        for _ in 0..3 {
            session.infer_batch_into(&inputs, &mut outs).expect("steady infer_batch_into");
            session.infer_batch_into(&inputs[..2], &mut outs[..2]).expect("steady partial batch");
        }
        let into_allocs = allocs() - before;
        assert_eq!(
            into_allocs, 0,
            "{label}: {into_allocs} allocations across steady-state infer_batch_into calls"
        );

        assert_eq!(out.data(), expected.data(), "{label}: zero-alloc path must stay correct");

        // Fused batching must not cost bit-exactness: every batch slot
        // matches serving that input alone.
        for (input, batched) in inputs.iter().zip(&outs) {
            let solo = engine.infer(input).expect("solo reference");
            assert_eq!(
                solo.data(),
                batched.data(),
                "{label}: fused batch output diverged from solo serve"
            );
        }
    }

    // ---- Failpoints cost nothing unless they fire -----------------------
    // The serving path is instrumented with fault-injection sites
    // (kernel dispatch, quant edges, buffer checkout). Disarmed, each is
    // one relaxed atomic load — the zero-allocation assertions above
    // already ran through them. Stronger: even with an *unrelated* site
    // armed (so every probe takes the registry-lookup slow path), a
    // warmed serving loop still performs zero heap allocations.
    use pbqp_dnn::faults;
    let engine = f32_model.engine();
    let mut session = engine.session();
    let (c, h, w) = f32_net.infer_shapes().unwrap()[0];
    let input = Tensor::random(c, h, w, Layout::Chw, 0xCD);
    let mut out = Tensor::empty();
    session.infer(&input, &mut out).expect("warmup infer");

    faults::arm(faults::ARTIFACT_READ, "every:error(not on the serving path)").expect("arms");
    let before = allocs();
    for _ in 0..5 {
        session.infer(&input, &mut out).expect("steady infer with unrelated site armed");
    }
    let armed_allocs = allocs() - before;
    faults::disarm_all();
    assert_eq!(
        armed_allocs, 0,
        "armed-but-unrelated failpoint: {armed_allocs} allocations across 5 serves"
    );
    assert!(engine.health().is_pristine(), "no fault ever fired on the serving path");
    drop(session);
    drop(engine);

    // ---- Live sampling costs no allocations either ----------------------
    // Everything above ran with sampling disabled: the per-step overhead
    // was exactly one relaxed atomic load of the process-wide gate. Now
    // arm it — with autotune on, a sampled step records into reservoirs
    // preallocated at attach time, so even sampling *every* step keeps
    // the warmed serving loop allocation-free. An infinite divergence
    // threshold keeps the background thread observing without ever
    // swapping a plan mid-measurement.
    use pbqp_dnn::prelude::AutotuneConfig;
    use pbqp_dnn::runtime::sampler;
    use std::time::{Duration, Instant};

    assert!(!sampler::active(), "the whole suite above ran with the sampler gate off");
    let engine = f32_model.engine();
    assert!(engine.enable_autotune(
        AutotuneConfig::new()
            .with_sample_rate(1)
            .with_divergence_threshold(f64::INFINITY)
            .with_poll_interval(Duration::from_millis(50)),
    ));
    assert!(sampler::active(), "enabling autotune arms the process-wide gate");
    let mut session = engine.session();
    let mut out = Tensor::empty();
    session.infer(&input, &mut out).expect("warmup infer under sampling");

    let before = allocs();
    for _ in 0..5 {
        session.infer(&input, &mut out).expect("steady sampled infer");
    }
    let sampled_allocs = allocs() - before;
    assert_eq!(
        sampled_allocs, 0,
        "armed sampler: {sampled_allocs} allocations across 5 steady-state serves"
    );
    let health = engine.health();
    assert!(health.samples > 0, "sampling observed the serves: {health:?}");
    assert_eq!(health.reoptimizations, 0, "infinite divergence threshold never swaps");

    // Retiring the engine retires its sampler: the gate falls back to
    // the one-relaxed-load disabled state for the rest of the process
    // (the background thread lets go within one poll interval).
    drop(session);
    drop(engine);
    let deadline = Instant::now() + Duration::from_secs(10);
    while sampler::active() {
        assert!(Instant::now() < deadline, "sampler gate stuck on after engine drop");
        std::thread::sleep(Duration::from_millis(5));
    }
}
