//! Proof of the zero-allocation steady state: after one warmup run, the
//! serving APIs (`run_into` / `run_batch_into` with serial parallelism)
//! perform **zero** heap allocations per forward pass on micro-AlexNet —
//! activations come from liveness-pooled slots, primitive scratch from
//! bump arenas, and outputs land in caller-recycled tensors.
//!
//! The counter is a `#[global_allocator]` wrapper over the system
//! allocator (no external deps). Everything runs inside a single `#[test]`
//! so no concurrent test can perturb the counter.

use std::alloc::{GlobalAlloc, Layout as AllocLayout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use pbqp_dnn::cost::{AnalyticCost, MachineModel};
use pbqp_dnn::graph::models::micro_alexnet;
use pbqp_dnn::primitives::registry::{full_library, Registry};
use pbqp_dnn::runtime::{Executor, Parallelism, Weights};
use pbqp_dnn::select::{Optimizer, Strategy};
use pbqp_dnn::tensor::{Layout, Tensor};

/// Counts every allocation and reallocation crossing the heap.
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: AllocLayout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: AllocLayout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: AllocLayout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: AllocLayout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> usize {
    ALLOCS.load(Ordering::SeqCst)
}

#[test]
fn steady_state_serving_performs_zero_heap_allocations() {
    let net = micro_alexnet();
    let reg = Registry::new(full_library());
    let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
    let opt = Optimizer::new(&reg, &cost);
    let weights = Weights::random(&net, 0x5EED);
    let (c, h, w) = net.infer_shapes().expect("valid model")[0];
    let input = Tensor::random(c, h, w, Layout::Chw, 7);
    let inputs: Vec<Tensor> =
        (0..3).map(|i| Tensor::random(c, h, w, Layout::Chw, 20 + i)).collect();

    // The paper's full PBQP selection plus the vendor/Caffe baselines —
    // zero-alloc steady state must hold whatever primitives get picked.
    for strategy in [Strategy::Pbqp, Strategy::CaffeLike, Strategy::VendorLike { vector_width: 8 }]
    {
        let plan = opt.plan(&net, strategy).expect("plans");
        let exec = Executor::new(&net, &plan, &reg, &weights);
        let mut out = Tensor::empty();
        let mut outs = Vec::new();

        // Warmup: compiles the schedule, builds the pooled buffers and
        // settles every arena watermark and output capacity.
        let expected = exec.run(&input, 1).expect("warmup run");
        exec.run_into(&input, &mut out, 1).expect("warmup run_into");
        exec.run_batch_into(&inputs, &mut outs, Parallelism::serial()).expect("warmup batch");

        // Steady state: repeated single-input serving.
        let before = allocs();
        for _ in 0..5 {
            exec.run_into(&input, &mut out, 1).expect("steady run_into");
        }
        let run_allocs = allocs() - before;
        assert_eq!(
            run_allocs,
            0,
            "{}: {run_allocs} allocations across 5 steady-state run_into calls",
            strategy.label()
        );

        // Steady state: repeated batch serving (serial mode — thread
        // fan-out necessarily allocates stacks, so it is exercised by the
        // equivalence suite instead).
        let before = allocs();
        for _ in 0..3 {
            exec.run_batch_into(&inputs, &mut outs, Parallelism::serial())
                .expect("steady run_batch_into");
        }
        let batch_allocs = allocs() - before;
        assert_eq!(
            batch_allocs,
            0,
            "{}: {batch_allocs} allocations across 3 steady-state run_batch_into calls",
            strategy.label()
        );

        // The allocation-free path must still compute the right answer.
        assert_eq!(out.data(), expected.data(), "{}", strategy.label());
        assert_eq!(out.dims(), expected.dims());

        // The allocating convenience wrapper stays cheap: its only
        // steady-state heap traffic is the returned output tensor.
        let before = allocs();
        let fresh = exec.run(&input, 1).expect("steady run");
        let wrapper_allocs = allocs() - before;
        assert!(
            wrapper_allocs <= 2,
            "{}: plain run should only allocate its output, saw {wrapper_allocs}",
            strategy.label()
        );
        assert_eq!(fresh.data(), expected.data());
    }
}
