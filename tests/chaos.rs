//! Chaos suite: every failpoint site × every action × every execution
//! mode, driven through the front door (load → engine → session).
//!
//! The contract under injected faults, per the fault-containment design:
//!
//! * the process never aborts — panics are contained into typed errors;
//! * whatever surfaces is either `Ok` (the engine recovered and served
//!   the request, possibly degraded through the reference path) or a
//!   typed [`Error`] — never a hang, never garbage;
//! * once the fault is disarmed, a freshly loaded model serves
//!   **bit-identically** to the never-injected baseline.
//!
//! Failpoints are process-global, so every test serializes on one guard
//! and disarms on entry (the executor-level containment tests live in
//! `crates/runtime/tests/containment.rs`).

use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use pbqp_dnn::prelude::*;
use pbqp_dnn::{faults, CompiledModel};

fn guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    let g = match LOCK.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    faults::disarm_all();
    g
}

/// Runs `f` with the default panic hook silenced: contained panics are
/// expected here and their backtraces would drown the test output.
fn quiet<R>(f: impl FnOnce() -> R) -> R {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let r = f();
    drop(std::panic::take_hook());
    std::panic::set_hook(hook);
    r
}

const MODES: &[&str] = &["serial", "wavefront", "batch"];

fn parallelism_for(mode: &str) -> Parallelism {
    match mode {
        "serial" => Parallelism::serial(),
        _ => Parallelism::serial().with_inter_op(4),
    }
}

/// Loads the artifact and serves one request (or a 3-batch) under
/// `mode`. Every failpoint site on the load→serve path is crossed:
/// artifact read, schedule compile, buffer checkout, kernel dispatch,
/// quant/dequant edges (the model is mixed-precision).
fn load_and_serve(bytes: &[u8], input: &Tensor, mode: &str) -> Result<Vec<Tensor>, Error> {
    let model = CompiledModel::load(&mut &bytes[..])?;
    let mut session = model.engine().session();
    session.set_parallelism(parallelism_for(mode));
    if mode == "batch" {
        let inputs: Vec<Tensor> = (0..3).map(|_| input.clone()).collect();
        let mut outs = Vec::new();
        session.infer_batch(&inputs, &mut outs)?;
        Ok(outs)
    } else {
        Ok(vec![session.infer_new(input)?])
    }
}

#[test]
fn every_site_every_action_every_mode_is_contained() {
    let _g = guard();

    // Mixed precision so the plan has quant/dequant edges and int8
    // kernels — the quant-edge site is genuinely on the serve path.
    let net = models::micro_mixed();
    let weights = Weights::random(&net, 0x1817);
    let model = Compiler::new(CompileOptions::new().mixed_precision(true))
        .compile(&net, &weights)
        .expect("compiles");
    assert!(model.plan().quant_edge_count() >= 2, "precondition: quant edges on the plan");
    let mut bytes = Vec::new();
    model.save(&mut bytes).expect("saves");
    let input = Tensor::random(16, 20, 20, Layout::Chw, 0xFA);

    let baseline = load_and_serve(&bytes, &input, "serial").expect("clean baseline")[0].clone();

    let actions = ["panic(chaos)", "error(chaos)", "delay(1)", "short-read(3)"];
    for site in faults::SITES {
        for action in actions {
            for mode in MODES {
                faults::arm(site, &format!("every:{action}")).expect("valid spec");
                let label = format!("{site} × {action} × {mode}");
                match quiet(|| load_and_serve(&bytes, &input, mode)) {
                    // Recovered (degraded serve) or the action was a
                    // no-op at this site (delay, short-read off the
                    // read path): results must still be well-formed.
                    Ok(outs) => {
                        for out in &outs {
                            assert_eq!(out.dims(), baseline.dims(), "{label}: malformed output");
                        }
                    }
                    // Contained into the typed vocabulary: anything but
                    // an abort. Spot-check the family per action.
                    Err(e) => match e {
                        Error::Runtime(_) | Error::Artifact(_) | Error::Io(_) => {}
                        other => panic!("{label}: unexpected error family: {other}"),
                    },
                }
                faults::disarm_all();

                // The very next un-injected load serves bit-identically
                // to the never-injected baseline.
                let outs = load_and_serve(&bytes, &input, mode)
                    .unwrap_or_else(|e| panic!("{label}: post-disarm serve failed: {e}"));
                for out in &outs {
                    assert_eq!(
                        out.data(),
                        baseline.data(),
                        "{label}: post-disarm output diverged from baseline"
                    );
                }
            }
        }
    }
}

#[test]
fn engine_degrades_gracefully_on_the_int8_island_plan_under_all_modes() {
    let _g = guard();

    // The int8-island plan from the alloc suite: micro-resnet on the ARM
    // machine model keeps its stem quantized end to end.
    let net = models::micro_resnet();
    let weights = Weights::random(&net, 0x2026);
    let model = Compiler::new(
        CompileOptions::new().machine(MachineModel::arm_a57_like()).mixed_precision(true),
    )
    .compile(&net, &weights)
    .expect("compiles");
    assert!(!model.plan().int8_op_nodes().is_empty(), "precondition: int8 island");
    let input = Tensor::random(16, 48, 48, Layout::Chw, 0xBEEF);
    let oracle = reference_forward(&net, &weights, &input);

    for mode in MODES {
        // Fresh engine per mode: health counters and quarantine start clean.
        let engine = model.engine();
        let mut session = engine.session();
        session.set_parallelism(parallelism_for(mode));
        assert!(engine.health().is_pristine(), "{mode}: fresh engine");

        // Every kernel dispatch panics — the worst serving day possible.
        faults::arm(faults::KERNEL_DISPATCH, "every:panic(injected kernel chaos)").unwrap();
        let mut out = Tensor::empty();
        let served = quiet(|| {
            if *mode == "batch" {
                let inputs: Vec<Tensor> = (0..3).map(|_| input.clone()).collect();
                let mut outs = Vec::new();
                session.infer_batch(&inputs, &mut outs).map(|()| outs.remove(0))
            } else {
                session.infer(&input, &mut out).map(|()| out.clone())
            }
        });
        faults::disarm_all();

        // The request was SERVED — degraded through the bit-exact
        // reference path — not failed.
        let served = served.unwrap_or_else(|e| panic!("{mode}: degraded serve failed: {e}"));
        assert!(
            served.allclose(&oracle, 1e-4).unwrap(),
            "{mode}: degraded serve must match the reference oracle"
        );

        // Health reflects the incident: contained panics counted, the
        // offending kernel quarantined, the plan re-planned around it.
        let health = engine.health();
        assert!(health.contained_panics >= 1, "{mode}: {health:?}");
        assert!(health.degraded_serves >= 1, "{mode}: {health:?}");
        assert!(!health.quarantined.is_empty(), "{mode}: {health:?}");
        assert!(health.plan_generation >= 1, "{mode}: {health:?}");

        // The re-planned engine serves un-injected requests normally —
        // bit-identical to a serial executor running the same rerouted
        // plan (the oracle comparison above covered correctness; int8
        // plans are not f32-oracle-tight, so this is the right check).
        let clean = session.infer_new(&input).expect("post-fault serve");
        let active = engine.active_plan();
        let direct = pbqp_dnn::runtime::Executor::new(
            model.graph(),
            &active,
            model.registry(),
            model.weights(),
        )
        .run(&input, 1)
        .expect("rerouted plan executes directly");
        assert_eq!(
            clean.data(),
            direct.data(),
            "{mode}: re-planned engine diverged from its own plan's serial execution"
        );

        // The active plan routes the quarantined node off its failed
        // kernel; the compiled base plan is untouched.
        for (node, kernel) in &health.quarantined {
            let id = net.find(node).expect("quarantined node exists");
            let assigned = active.assignment(id);
            let name = format!("{assigned:?}");
            assert!(
                !name.contains(kernel.as_str()) || kernel == "sum2d",
                "{mode}: node `{node}` still assigned quarantined kernel `{kernel}`"
            );
        }
    }
}

#[test]
fn artifact_load_faults_are_typed_and_transient() {
    let _g = guard();

    let net = models::micro_alexnet();
    let weights = Weights::random(&net, 42);
    let model = Compiler::new(CompileOptions::new()).compile(&net, &weights).expect("compiles");
    let mut bytes = Vec::new();
    model.save(&mut bytes).expect("saves");
    let (c, h, w) = net.infer_shapes().unwrap()[0];
    let input = Tensor::random(c, h, w, Layout::Chw, 7);
    let baseline = model.engine().infer(&input).expect("baseline");

    // Short read: the truncated stream is rejected through the normal
    // truncation/corruption vocabulary.
    faults::arm(faults::ARTIFACT_READ, "nth(1):short-read(5)").unwrap();
    let err = CompiledModel::load(&mut bytes.as_slice()).unwrap_err();
    assert!(matches!(err, Error::Artifact(_)), "short read: got {err}");

    // Injected I/O error.
    faults::arm(faults::ARTIFACT_READ, "nth(1):error(disk gremlin)").unwrap();
    let err = CompiledModel::load(&mut bytes.as_slice()).unwrap_err();
    assert!(matches!(err, Error::Io(_)), "io error: got {err}");

    // A panic mid-decode is contained, attributed to the load.
    faults::arm(faults::ARTIFACT_READ, "nth(1):panic(decoder bug)").unwrap();
    let err = quiet(|| CompiledModel::load(&mut bytes.as_slice())).unwrap_err();
    match err {
        Error::Runtime(e) => {
            let msg = e.to_string();
            assert!(
                msg.contains("artifact load") && msg.contains("decoder bug"),
                "contained load panic: {msg}"
            );
        }
        other => panic!("expected contained load panic, got {other}"),
    }

    // All three were nth(1) one-shots: the next load is clean and the
    // loaded model serves bit-identically.
    faults::disarm_all();
    let loaded = CompiledModel::load(&mut bytes.as_slice()).expect("clean load");
    let out = loaded.engine().infer(&input).expect("clean serve");
    assert_eq!(out.data(), baseline.data());
}

#[test]
fn autotune_resolve_faults_are_contained_and_the_next_trigger_retries() {
    let _g = guard();

    // Mis-modeled compile so the autotune loop genuinely wants to
    // re-solve the moment it has observations.
    let net = models::micro_alexnet();
    let weights = Weights::random(&net, 42);
    let mut wrong = MachineModel::intel_haswell_like();
    wrong.int8_speedup = 30.0;
    let model = Compiler::new(CompileOptions::new().machine(wrong).mixed_precision(true))
        .compile(&net, &weights)
        .expect("compiles");
    let engine = model.engine();

    // Every background re-solve panics (injected) until disarmed.
    faults::arm(faults::AUTOTUNE_RESOLVE, "every:panic(resolve chaos)").unwrap();
    assert!(engine.enable_autotune(
        AutotuneConfig::new()
            .with_sample_rate(1)
            .with_min_samples(4)
            .with_min_node_samples(1)
            .with_divergence_threshold(0.01)
            .with_cooldown(Duration::from_millis(10))
            .with_poll_interval(Duration::from_millis(5))
            .with_fill(CandidateFill::Analytic(MachineModel::intel_haswell_like())),
    ));

    let (c, h, w) = net.infer_shapes().unwrap()[0];
    let input = Tensor::random(c, h, w, Layout::Chw, 7);
    let mut session = engine.session();

    // Serving continues on the old generation through repeated contained
    // background failures; health reports every one of them.
    let deadline = Instant::now() + Duration::from_secs(60);
    let failed = quiet(|| loop {
        session.infer_new(&input).expect("serving continues through re-solve failures");
        let h = engine.health();
        if h.autotune_failures >= 2 {
            break h;
        }
        assert!(Instant::now() < deadline, "injected resolve fault never surfaced: {h:?}");
    });
    assert_eq!(failed.reoptimizations, 0, "{failed:?}");
    assert_eq!(failed.plan_generation, 1, "enable bump only — failures swap nothing: {failed:?}");

    // Disarm: the next post-cooldown trigger retries and lands a swap.
    faults::disarm_all();
    let deadline = Instant::now() + Duration::from_secs(60);
    let healed = quiet(|| loop {
        session.infer_new(&input).expect("serving continues across the swap");
        let h = engine.health();
        if h.reoptimizations >= 1 {
            break h;
        }
        assert!(Instant::now() < deadline, "post-disarm retry never landed: {h:?}");
    });
    assert!(healed.plan_generation >= 2, "{healed:?}");
    assert_eq!(
        healed.contained_panics, 0,
        "background re-solve panics are autotune failures, not serving-path panics: {healed:?}"
    );
}

#[test]
fn probability_trigger_injects_deterministically_by_seed() {
    let _g = guard();

    let net = models::micro_alexnet();
    let weights = Weights::random(&net, 42);
    let model = Compiler::new(CompileOptions::new()).compile(&net, &weights).expect("compiles");
    let (c, h, w) = net.infer_shapes().unwrap()[0];
    let input = Tensor::random(c, h, w, Layout::Chw, 7);

    // p=1 always fires; p=0 never does. Either way the engine serves:
    // kernel failures degrade to the reference path.
    faults::arm(faults::KERNEL_DISPATCH, "prob(1.0,7):error(flaky)").unwrap();
    let engine = model.engine();
    let out = engine.infer(&input).expect("degraded serve");
    assert!(engine.health().degraded_serves >= 1);
    assert_eq!(out.dims(), *net.infer_shapes().unwrap().last().unwrap());

    faults::arm(faults::KERNEL_DISPATCH, "prob(0.0,7):error(flaky)").unwrap();
    let engine = model.engine();
    engine.infer(&input).expect("p=0 never fires");
    assert!(engine.health().is_pristine());
    faults::disarm_all();
}
