//! Parallel-vs-serial equivalence: the wavefront scheduler and the
//! batched executor must produce **bit-identical** outputs to the serial
//! reference executor — not merely close. The engine only ever partitions
//! work between threads; it never changes a kernel's per-element
//! accumulation order, so exact equality is the contract.
//!
//! Random cases (strategy × parallelism × input seed) are drawn from a
//! fixed-seed splitmix64 generator over the two canonical test networks:
//! micro-AlexNet (a deep chain — wavefront levels of width 1) and a
//! micro inception module (a branching DAG — real inter-op parallelism).

use pbqp_dnn_cost::{AnalyticCost, MachineModel};
use pbqp_dnn_graph::models::{micro_alexnet, micro_inception};
use pbqp_dnn_graph::DnnGraph;
use pbqp_dnn_primitives::registry::{full_library, Registry};
use pbqp_dnn_runtime::{Executor, Parallelism, Weights};
use pbqp_dnn_select::{Optimizer, Strategy};
use pbqp_dnn_tensor::rng::SplitMix64;
use pbqp_dnn_tensor::{Layout, Tensor};

fn strategies() -> Vec<Strategy> {
    let mut v = vec![
        Strategy::Pbqp,
        Strategy::PbqpHeuristic,
        Strategy::Sum2d,
        Strategy::LocalOptimalChw,
        Strategy::CaffeLike,
        Strategy::VendorLike { vector_width: 8 },
        Strategy::VendorLike { vector_width: 4 },
    ];
    v.extend(Strategy::family_bars());
    v
}

fn check_network(name: &str, net: &DnnGraph, rng: &mut SplitMix64, cases: usize) {
    let reg = Registry::new(full_library());
    let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 2);
    let opt = Optimizer::new(&reg, &cost);
    let weights = Weights::random(net, rng.next_u64());
    let (c, h, w) = net.infer_shapes().unwrap()[0];
    let all = strategies();

    for case in 0..cases {
        let strategy = all[rng.usize(0, all.len())];
        let plan = opt.plan(net, strategy).unwrap();
        let exec = Executor::new(net, &plan, &reg, &weights);
        let par =
            Parallelism::serial().with_inter_op(rng.usize(1, 6)).with_intra_op(rng.usize(1, 4));

        // Serial reference for a batch of random inputs.
        let batch: Vec<Tensor> = (0..rng.usize(1, 10))
            .map(|_| Tensor::random(c, h, w, Layout::Chw, rng.next_u64()))
            .collect();
        let serial: Vec<Tensor> = batch.iter().map(|input| exec.run(input, 1).unwrap()).collect();

        // Wavefront on the first input.
        let wave = exec.run_with(&batch[0], par).unwrap();
        assert_eq!(
            wave.data(),
            serial[0].data(),
            "{name} case {case} ({}, {par}): wavefront diverged",
            strategy.label()
        );
        assert_eq!(wave.layout(), serial[0].layout());

        // Batched over every input.
        let outs = exec.run_batch(&batch, par).unwrap();
        assert_eq!(outs.len(), serial.len());
        for (i, (got, want)) in outs.iter().zip(&serial).enumerate() {
            assert_eq!(
                got.data(),
                want.data(),
                "{name} case {case} item {i} ({}, {par}): batch diverged",
                strategy.label()
            );
        }
    }
}

/// The same contract with the int8 kernels in play and the runtime ISA
/// dispatch active (no override): a mixed-precision plan's quantized
/// islands run the host's best SIMD micro-kernels, whose integer
/// accumulation is order-exact — so wavefront and batch must still be
/// bit-identical to serial.
#[test]
fn mixed_precision_parallel_modes_are_bit_identical_with_simd_dispatch_active() {
    use pbqp_dnn::gemm::arch;
    use pbqp_dnn::primitives::registry::mixed_precision_library;

    // Precondition, not an assumption: dispatch is live and reports the
    // strongest tier this host supports.
    assert_eq!(arch::active_isa(), arch::features().best());

    let net = pbqp_dnn::graph::models::micro_resnet();
    let mut rng = SplitMix64::new(0x51D_D15B);
    let reg = Registry::new(mixed_precision_library());
    let cost = AnalyticCost::new(MachineModel::arm_a57_like(), 1);
    let plan = Optimizer::new(&reg, &cost).plan(&net, Strategy::Pbqp).unwrap();
    assert!(!plan.int8_layers().is_empty(), "fixture must exercise the int8 kernels");
    let weights = Weights::random(&net, rng.next_u64());
    let exec = Executor::new(&net, &plan, &reg, &weights);
    let (c, h, w) = net.infer_shapes().unwrap()[0];

    for case in 0..4 {
        let batch: Vec<Tensor> = (0..rng.usize(1, 5))
            .map(|_| Tensor::random(c, h, w, Layout::Chw, rng.next_u64()))
            .collect();
        let par =
            Parallelism::serial().with_inter_op(rng.usize(2, 6)).with_intra_op(rng.usize(1, 4));
        let serial: Vec<Tensor> = batch.iter().map(|input| exec.run(input, 1).unwrap()).collect();
        let wave = exec.run_with(&batch[0], par).unwrap();
        assert_eq!(wave.data(), serial[0].data(), "case {case} ({par}): wavefront diverged");
        let outs = exec.run_batch(&batch, par).unwrap();
        for (i, (got, want)) in outs.iter().zip(&serial).enumerate() {
            assert_eq!(got.data(), want.data(), "case {case} item {i} ({par}): batch diverged");
        }
    }
}

#[test]
fn micro_alexnet_parallel_modes_are_bit_identical_to_serial() {
    let mut rng = SplitMix64::new(0xA1EC);
    check_network("micro_alexnet", &micro_alexnet(), &mut rng, 8);
}

#[test]
fn micro_inception_parallel_modes_are_bit_identical_to_serial() {
    let mut rng = SplitMix64::new(0x10CE);
    check_network("micro_inception", &micro_inception(), &mut rng, 8);
}
