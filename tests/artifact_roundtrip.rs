//! The shippable-artifact contract: `load(save(model))` serves
//! **bit-identically** to the freshly compiled model — for a pure-f32
//! plan and for a mixed-precision (int8-bearing) plan — and every form
//! of damage to the byte stream (bad magic, wrong version, flipped
//! fingerprint, truncation, random corruption) is rejected with an error
//! rather than a panic or a silently wrong model.
//!
//! Property-style cases are drawn from a fixed-seed splitmix64 generator,
//! matching the workspace's dependency-free proptest idiom.

use pbqp_dnn::prelude::*;
use pbqp_dnn::tensor::rng::SplitMix64;

fn save_bytes(model: &CompiledModel) -> Vec<u8> {
    let mut bytes = Vec::new();
    model.save(&mut bytes).expect("saving to a Vec cannot fail");
    bytes
}

/// Compile, ship and reload one model, then prove bit-identical serving
/// across a spread of random inputs — through both the session API and
/// the one-shot engine API.
fn check_round_trip(name: &str, net: &DnnGraph, mixed: bool, rng: &mut SplitMix64) {
    let weights = Weights::random(net, rng.next_u64());
    let options =
        CompileOptions::new().machine(MachineModel::intel_haswell_like()).mixed_precision(mixed);
    let model = Compiler::new(options).compile(net, &weights).expect("compiles");
    if mixed {
        assert!(
            !model.plan().int8_layers().is_empty(),
            "{name}: precondition — the mixed fixture must select int8"
        );
    }

    let bytes = save_bytes(&model);
    let loaded = CompiledModel::load(&mut bytes.as_slice()).expect("round trip loads");
    assert_eq!(loaded.fingerprint(), model.fingerprint());
    assert_eq!(loaded.library(), model.library());
    assert_eq!(loaded.graph().fingerprint(), model.graph().fingerprint());
    assert_eq!(loaded.plan().predicted_us.to_bits(), model.plan().predicted_us.to_bits());
    assert_eq!(loaded.activation_slots(), model.activation_slots());

    // Saving the loaded model reproduces the artifact byte-for-byte.
    assert_eq!(save_bytes(&loaded), bytes, "{name}: save is not canonical");

    let fresh_engine = model.engine();
    let mut fresh = fresh_engine.session();
    let mut shipped = loaded.engine().session();
    let (c, h, w) = net.infer_shapes().unwrap()[0];
    let mut out_a = Tensor::empty();
    let mut out_b = Tensor::empty();
    for _ in 0..5 {
        let input = Tensor::random(c, h, w, Layout::Chw, rng.next_u64());
        fresh.infer(&input, &mut out_a).expect("fresh model serves");
        shipped.infer(&input, &mut out_b).expect("loaded model serves");
        assert_eq!(out_a.data(), out_b.data(), "{name}: loaded model diverged");
        assert_eq!(out_a.dims(), out_b.dims());
        // One-shot engine API agrees too.
        assert_eq!(fresh_engine.infer(&input).unwrap().data(), out_a.data());
    }
}

#[test]
fn f32_plans_round_trip_bit_identically() {
    let mut rng = SplitMix64::new(0xA57_1FAC7);
    check_round_trip("micro_alexnet", &models::micro_alexnet(), false, &mut rng);
    check_round_trip("micro_inception", &models::micro_inception(), false, &mut rng);
}

#[test]
fn mixed_precision_plans_round_trip_bit_identically() {
    let mut rng = SplitMix64::new(0x8BAD_F00D_1238);
    check_round_trip("micro_mixed", &models::micro_mixed(), true, &mut rng);
}

#[test]
fn micro_resnet_mixed_plan_round_trips_bit_identically() {
    // The residual network exercises the v2 wire format end to end:
    // `Add` layer encoding, per-node op-kernel assignments (including
    // int8 relu/pool selections) and the fan-out/fan-in edge set.
    let mut rng = SplitMix64::new(0x0DD_B177E5);
    check_round_trip("micro_resnet", &models::micro_resnet(), true, &mut rng);
}

#[test]
fn loaded_mixed_model_reuses_the_shipped_weight_image() {
    // The artifact carries the pre-quantized int8 weight images; loading
    // must restore them into the kernels' caches rather than rescanning
    // the f32 taps on the serving host.
    let net = models::micro_mixed();
    let weights = Weights::random(&net, 0xFEED);
    let model =
        Compiler::new(CompileOptions::new().mixed_precision(true)).compile(&net, &weights).unwrap();
    let int8_layers = model.plan().int8_layers();
    assert!(!int8_layers.is_empty(), "precondition");
    let bytes = save_bytes(&model);
    let loaded = CompiledModel::load(&mut bytes.as_slice()).unwrap();
    for node in int8_layers {
        let kernel = loaded.weights().conv_kernel(node).expect("conv weights shipped");
        assert!(kernel.has_quantized(), "int8 image must arrive pre-quantized");
        assert_eq!(*kernel.quantized(), *model.weights().conv_kernel(node).unwrap().quantized());
    }
}

#[test]
fn bad_magic_and_wrong_version_are_rejected() {
    let net = models::micro_mixed();
    let model = Compiler::new(CompileOptions::new().mixed_precision(true))
        .compile(&net, &Weights::random(&net, 1))
        .unwrap();
    let bytes = save_bytes(&model);

    // Any damage to the magic bytes.
    for i in 0..8 {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0x5A;
        let err = CompiledModel::load(&mut corrupt.as_slice()).unwrap_err();
        assert!(
            matches!(err, Error::Artifact(ArtifactError::BadMagic)),
            "magic byte {i}: got {err}"
        );
    }

    // A future format version is refused, not misparsed.
    let mut future = bytes.clone();
    future[8] = future[8].wrapping_add(1);
    let err = CompiledModel::load(&mut future.as_slice()).unwrap_err();
    assert!(matches!(
        err,
        Error::Artifact(ArtifactError::UnsupportedVersion {
            supported: pbqp_dnn::FORMAT_VERSION,
            ..
        })
    ));

    // Not-even-an-artifact streams.
    for junk in [&b""[..], &b"PBQP"[..], &[0u8; 64][..]] {
        assert!(CompiledModel::load(&mut <&[u8]>::clone(&junk)).is_err());
    }
}

#[test]
fn v1_header_artifacts_are_refused_with_the_version_error() {
    // Format v1 encoded non-conv layers as layout-only dummy
    // assignments; v2's plan section is incompatible (op-kernel
    // assignments, `Add` layers). A v1-header artifact must be refused
    // with the *versioned* error — never a panic, and never a silent
    // misparse into a wrong model — even when everything else about the
    // stream (magic, checksum, body framing) looks perfectly valid.
    assert_eq!(pbqp_dnn::FORMAT_VERSION, 2, "bump this fixture alongside the format");
    let net = models::micro_resnet();
    let model = Compiler::new(CompileOptions::new().mixed_precision(true))
        .compile(&net, &Weights::random(&net, 7))
        .unwrap();
    let mut v1 = save_bytes(&model);
    v1[8..12].copy_from_slice(&1u32.to_le_bytes());

    // With a stale checksum the version gate still fires first…
    let err = CompiledModel::load(&mut v1.as_slice()).unwrap_err();
    assert!(
        matches!(
            err,
            Error::Artifact(ArtifactError::UnsupportedVersion { found: 1, supported: 2 })
        ),
        "stale-checksum v1 header: got {err}"
    );

    // …and a checksum-consistent v1 stream is refused by the version
    // check itself, proving rejection does not ride on the checksum.
    refresh_checksum(&mut v1);
    let err = CompiledModel::load(&mut v1.as_slice()).unwrap_err();
    assert!(
        matches!(
            err,
            Error::Artifact(ArtifactError::UnsupportedVersion { found: 1, supported: 2 })
        ),
        "checksum-valid v1 header: got {err}"
    );
    // The error message names both versions for the operator.
    let msg = err.to_string();
    assert!(msg.contains('1') && msg.contains('2'), "unhelpful version error: {msg}");
}

/// Rewrites the header's stream checksum to match the (possibly
/// tampered) bytes, so tests can reach the validation layers *behind*
/// the checksum. Mirrors the artifact module's word-wise FNV variant
/// (length-prefixed sections, 8-byte little-endian words, zero-padded
/// tail).
fn refresh_checksum(bytes: &mut [u8]) {
    const CHECKSUM_OFFSET: usize = 53;
    const PRIME: u64 = 0x100000001b3;
    let mut acc: u64 = 0xcbf29ce484222325;
    let eat = |acc: u64, word: u64| (acc ^ word).wrapping_mul(PRIME);
    let (head, rest) = bytes.split_at(CHECKSUM_OFFSET);
    for section in [head, &rest[8..]] {
        acc = eat(acc, section.len() as u64);
        let mut chunks = section.chunks_exact(8);
        for chunk in &mut chunks {
            acc = eat(acc, u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = [0u8; 8];
            word[..tail.len()].copy_from_slice(tail);
            acc = eat(acc, u64::from_le_bytes(word));
        }
    }
    bytes[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 8].copy_from_slice(&acc.to_le_bytes());
}

#[test]
fn corruption_and_wrong_fingerprints_are_rejected() {
    let net = models::micro_alexnet();
    let model =
        Compiler::new(CompileOptions::new()).compile(&net, &Weights::random(&net, 2)).unwrap();
    let bytes = save_bytes(&model);

    // The graph fingerprint lives at bytes 12..20. A plain flip is
    // caught by the stream checksum (transport integrity)…
    for i in 12..20 {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0xFF;
        let err = CompiledModel::load(&mut corrupt.as_slice()).unwrap_err();
        assert!(
            matches!(err, Error::Artifact(ArtifactError::ChecksumMismatch { .. })),
            "fingerprint byte {i}: got {err}"
        );
        // …and a *checksum-consistent* stream whose header disagrees with
        // the network it actually encodes (a crafted or mis-paired
        // artifact) is caught by the fingerprint revalidation behind it.
        refresh_checksum(&mut corrupt);
        let err = CompiledModel::load(&mut corrupt.as_slice()).unwrap_err();
        assert!(
            matches!(err, Error::Artifact(ArtifactError::FingerprintMismatch { .. })),
            "fingerprint byte {i} (checksum fixed): got {err}"
        );
    }

    // Damaging the body — the encoded graph at its start, the weight
    // taps at its end — is rejected by the checksum; a flipped weight
    // byte must never serve silently wrong results.
    let body_start = 61; // fixed header: 8 magic + 4 + 8 + 8 + 1 + 16 + 8 + 8 checksum
    for ix in [body_start + 10, bytes.len() - 5] {
        let mut corrupt = bytes.clone();
        corrupt[ix] ^= 0xFF;
        let err = CompiledModel::load(&mut corrupt.as_slice()).unwrap_err();
        assert!(
            matches!(err, Error::Artifact(ArtifactError::ChecksumMismatch { .. })),
            "body byte {ix}: got {err}"
        );
    }
}

#[test]
fn truncated_streams_are_rejected_at_every_length() {
    let net = models::micro_mixed();
    let model = Compiler::new(CompileOptions::new().mixed_precision(true))
        .compile(&net, &Weights::random(&net, 3))
        .unwrap();
    let bytes = save_bytes(&model);
    // Every strict prefix must fail (sampled densely at the front where
    // the header fields live, sparsely across the body).
    let mut cuts: Vec<usize> = (0..64.min(bytes.len())).collect();
    cuts.extend((64..bytes.len()).step_by(97));
    cuts.push(bytes.len() - 1);
    for cut in cuts {
        let err = CompiledModel::load(&mut bytes[..cut].as_ref()).unwrap_err();
        assert!(
            matches!(err, Error::Artifact(_) | Error::Io(_)),
            "prefix {cut}: unexpected error {err}"
        );
    }
    // Trailing garbage is rejected too.
    let mut padded = bytes.clone();
    padded.extend_from_slice(b"extra");
    assert!(CompiledModel::load(&mut padded.as_slice()).is_err());
}

#[test]
fn random_single_byte_corruption_never_panics() {
    // Fuzz-lite: flip one random bit anywhere in the artifact. The
    // stream checksum covers every byte except itself, so corruption is
    // expected to fail cleanly — this test's job is proving it never
    // panics and never serves a broken model.
    let net = models::micro_mixed();
    let model = Compiler::new(CompileOptions::new().mixed_precision(true))
        .compile(&net, &Weights::random(&net, 4))
        .unwrap();
    let bytes = save_bytes(&model);
    let mut rng = SplitMix64::new(0xF1217);
    let (c, h, w) = net.infer_shapes().unwrap()[0];
    let input = Tensor::random(c, h, w, Layout::Chw, 9);
    for _ in 0..200 {
        let ix = (rng.next_u64() as usize) % bytes.len();
        let bit = 1u8 << (rng.next_u64() % 8);
        let mut corrupt = bytes.clone();
        corrupt[ix] ^= bit;
        if let Ok(loaded) = CompiledModel::load(&mut corrupt.as_slice()) {
            let mut session = loaded.engine().session();
            // A structurally intact model must still execute.
            session.infer_new(&input).expect("decoded model must serve");
        }
    }
}
