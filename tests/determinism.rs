//! Determinism and serialization round trips: the cost tables the paper
//! ships alongside trained models (§4, "the resulting cost tables are
//! tiny … and ship them with the trained model") must be reproducible and
//! parse back losslessly, and planning must be a pure function of them.

use pbqp_dnn_cost::{AnalyticCost, CostTable, MachineModel};
use pbqp_dnn_graph::models;
use pbqp_dnn_primitives::registry::{full_library, Registry};
use pbqp_dnn_select::{Optimizer, Strategy};

#[test]
fn analytic_cost_tables_are_identical_across_runs() {
    let reg = Registry::new(full_library());
    let cost = AnalyticCost::new(MachineModel::arm_a57_like(), 4);
    let net = models::googlenet();
    let a = CostTable::profile(&net, &reg, &cost);
    let b = CostTable::profile(&net, &reg, &cost);
    assert_eq!(a.to_text(), b.to_text());
}

#[test]
fn cost_table_text_round_trips_for_googlenet() {
    let reg = Registry::new(full_library());
    let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
    let net = models::googlenet();
    let table = CostTable::profile(&net, &reg, &cost);
    let parsed = CostTable::parse(&table.to_text()).expect("own output parses");
    assert_eq!(parsed.layers().len(), table.layers().len());
    for (a, b) in table.layers().iter().zip(parsed.layers()) {
        assert_eq!(a.scenario, b.scenario);
        assert_eq!(a.costs.len(), b.costs.len());
    }
}

#[test]
fn plans_are_identical_across_runs() {
    let reg = Registry::new(full_library());
    let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 4);
    let opt = Optimizer::new(&reg, &cost);
    let net = models::alexnet();
    let p1 = opt.plan(&net, Strategy::Pbqp).unwrap();
    let p2 = opt.plan(&net, Strategy::Pbqp).unwrap();
    assert_eq!(p1.selected_primitives(), p2.selected_primitives());
    assert_eq!(p1.predicted_us, p2.predicted_us);
    assert_eq!(p1.transform_count(), p2.transform_count());
}

#[test]
fn planning_from_a_parsed_table_matches_planning_from_the_original() {
    // The deployment story: profile once, ship the text table, plan on
    // device from the parsed copy.
    let reg = Registry::new(full_library());
    let cost = AnalyticCost::new(MachineModel::arm_a57_like(), 1);
    let opt = Optimizer::new(&reg, &cost);
    let net = models::alexnet();
    let shapes = net.infer_shapes().unwrap();
    let original = CostTable::profile(&net, &reg, &cost);
    let shipped = CostTable::parse(&original.to_text()).unwrap();
    let p1 = opt.plan_with_table(&net, &shapes, &original, Strategy::Pbqp).unwrap();
    let p2 = opt.plan_with_table(&net, &shapes, &shipped, Strategy::Pbqp).unwrap();
    assert_eq!(p1.selected_primitives(), p2.selected_primitives());
    assert!((p1.predicted_us - p2.predicted_us).abs() < 1.0);
}
