//! Runtime ISA dispatch, end to end: the same compiled plan must serve
//! correctly under every instruction set the host can force, serial /
//! wavefront / `Session::infer` must agree bit-for-bit within each ISA,
//! and an artifact compiled under one forced ISA must serve under
//! another.
//!
//! The override is process-global state, so every test that touches it
//! serializes on one mutex and restores automatic dispatch on exit
//! (a drop guard, so a failing assertion cannot poison later tests).

use std::sync::{Mutex, MutexGuard};

use pbqp_dnn::gemm::arch::{self, Isa};
use pbqp_dnn::graph::models;
use pbqp_dnn::prelude::*;
use pbqp_dnn::tensor::rng::SplitMix64;

static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// Holds the override lock and pins dispatch to `isa`; restores
/// automatic dispatch when dropped.
struct ForcedIsa {
    _guard: MutexGuard<'static, ()>,
}

impl ForcedIsa {
    fn new(isa: Isa) -> ForcedIsa {
        let guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        arch::set_override(Some(isa));
        ForcedIsa { _guard: guard }
    }
}

impl Drop for ForcedIsa {
    fn drop(&mut self) {
        arch::set_override(None);
    }
}

fn isas() -> Vec<Isa> {
    arch::available_kernels().iter().map(|k| k.isa()).collect()
}

/// Serves `model` on `inputs`, returning the final activations.
fn serve(model: &CompiledModel, inputs: &[Tensor]) -> Vec<Tensor> {
    let mut session = model.engine().session();
    let mut out = Tensor::empty();
    inputs
        .iter()
        .map(|input| {
            session.infer(input, &mut out).expect("model serves");
            out.clone()
        })
        .collect()
}

#[test]
fn every_forced_isa_serves_the_mixed_network_and_low_tiers_match_scalar_exactly() {
    let net = models::micro_mixed();
    let mut rng = SplitMix64::new(0x15A_D15B);
    let weights = Weights::random(&net, rng.next_u64());
    let options =
        CompileOptions::new().machine(MachineModel::intel_haswell_like()).mixed_precision(true);
    let model = Compiler::new(options).compile(&net, &weights).expect("compiles");
    assert!(!model.plan().int8_layers().is_empty(), "fixture must exercise the int8 kernels");
    let (c, h, w) = net.infer_shapes().unwrap()[0];
    let inputs: Vec<Tensor> =
        (0..4).map(|_| Tensor::random(c, h, w, Layout::Chw, rng.next_u64())).collect();

    let scalar_outs = {
        let _force = ForcedIsa::new(Isa::Scalar);
        serve(&model, &inputs)
    };
    for isa in isas() {
        let _force = ForcedIsa::new(isa);
        let outs = serve(&model, &inputs);
        for (i, (got, want)) in outs.iter().zip(&scalar_outs).enumerate() {
            assert_eq!(got.dims(), want.dims());
            match isa {
                // int8 kernels are bit-exact everywhere; SSE2 f32
                // reproduces scalar's rounding sequence exactly.
                Isa::Scalar | Isa::Sse2 => {
                    assert_eq!(got.data(), want.data(), "{isa} input {i} diverged from scalar")
                }
                // AVX2 f32 uses FMA: ULP-level kernel differences, at
                // worst amplified to single-code shifts across
                // quantization boundaries.
                Isa::Avx2 => {
                    let scale = want.data().iter().fold(1.0f32, |m, &v| m.max(v.abs()));
                    let diff = got.max_abs_diff(want).unwrap();
                    assert!(diff <= 0.02 * scale, "{isa} input {i}: diff {diff} vs scale {scale}");
                }
            }
        }
    }
}

#[test]
fn serial_wavefront_and_session_agree_bit_for_bit_under_every_forced_isa() {
    use pbqp_dnn::cost::AnalyticCost;
    use pbqp_dnn::primitives::registry::{mixed_precision_library, Registry};
    use pbqp_dnn::runtime::{Executor, Parallelism};
    use pbqp_dnn::select::{Optimizer, Strategy};

    let net = models::micro_resnet();
    let mut rng = SplitMix64::new(0xD15B_A7C4);
    let weights = Weights::random(&net, rng.next_u64());
    let reg = Registry::new(mixed_precision_library());
    let cost = AnalyticCost::new(MachineModel::arm_a57_like(), 1);
    let plan = Optimizer::new(&reg, &cost).plan(&net, Strategy::Pbqp).unwrap();
    let exec = Executor::new(&net, &plan, &reg, &weights);
    let (c, h, w) = net.infer_shapes().unwrap()[0];
    let input = Tensor::random(c, h, w, Layout::Chw, rng.next_u64());

    for isa in isas() {
        let _force = ForcedIsa::new(isa);
        let serial = exec.run(&input, 1).unwrap();
        let wave =
            exec.run_with(&input, Parallelism::serial().with_inter_op(4).with_intra_op(2)).unwrap();
        assert_eq!(serial.data(), wave.data(), "{isa}: wavefront diverged from serial");
        assert_eq!(serial.layout(), wave.layout());
    }
}

#[test]
fn artifact_compiled_under_one_isa_serves_under_another() {
    let net = models::micro_resnet();
    let mut rng = SplitMix64::new(0xA271_FAC7);
    let weights = Weights::random(&net, rng.next_u64());
    let (c, h, w) = net.infer_shapes().unwrap()[0];
    let inputs: Vec<Tensor> =
        (0..3).map(|_| Tensor::random(c, h, w, Layout::Chw, rng.next_u64())).collect();

    // Compile and save on a "build machine" pinned to scalar…
    let bytes = {
        let _force = ForcedIsa::new(Isa::Scalar);
        let options =
            CompileOptions::new().machine(MachineModel::arm_a57_like()).mixed_precision(true);
        let model = Compiler::new(options).compile(&net, &weights).expect("compiles");
        let mut bytes = Vec::new();
        model.save(&mut bytes).expect("saving to a Vec cannot fail");
        (bytes, serve(&model, &inputs))
    };
    let (bytes, build_outs) = bytes;

    // …then load and serve on this host's best ISA: the plan is ISA-
    // independent, so the artifact must serve everywhere the crate runs.
    let loaded = CompiledModel::load(&mut bytes.as_slice()).expect("artifact loads");
    let served = serve(&loaded, &inputs);
    for (i, (got, want)) in served.iter().zip(&build_outs).enumerate() {
        assert_eq!(got.dims(), want.dims());
        let scale = want.data().iter().fold(1.0f32, |m, &v| m.max(v.abs()));
        let diff = got.max_abs_diff(want).unwrap();
        assert!(diff <= 0.02 * scale, "input {i}: diff {diff} vs scale {scale}");
    }
}
