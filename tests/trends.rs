//! The §5.8 experimental trends, asserted over the full evaluation models
//! on the analytic machine models (no tensor execution — pure planning).

use pbqp_dnn_bench::{evaluate_network, figure_strategies, registry};
use pbqp_dnn_cost::{AnalyticCost, MachineModel};
use pbqp_dnn_graph::models::{self, VggVariant};
use pbqp_dnn_primitives::Family;
use pbqp_dnn_select::{Optimizer, Strategy};

fn speedup_of(results: &[pbqp_dnn_bench::StrategyResult], s: Strategy) -> f64 {
    results.iter().find(|r| r.strategy == s).map(|r| r.speedup).expect("strategy evaluated")
}

#[test]
fn no_single_family_excels_everywhere() {
    // §5.8: "there is no one convolution algorithm which excels in every
    // scenario": winograd dominates the families on VGG-E (all K=3), but
    // is far from the PBQP optimum on AlexNet and GoogleNet, whose strided
    // and pointwise layers it cannot serve.
    let reg = registry();
    let machine = MachineModel::intel_haswell_like();
    let strategies = figure_strategies(8);

    let vgg = evaluate_network(&models::vgg(VggVariant::E), &reg, &machine, 1, &strategies);
    let families = [Family::Direct, Family::Im2, Family::Kn2, Family::Winograd, Family::Fft];
    let wino = speedup_of(&vgg, Strategy::FamilyBest(Family::Winograd));
    for f in families {
        assert!(wino >= speedup_of(&vgg, Strategy::FamilyBest(f)), "{f} beat winograd on VGG-E");
    }

    for net in [models::alexnet(), models::googlenet()] {
        let r = evaluate_network(&net, &reg, &machine, 1, &strategies);
        let wino = speedup_of(&r, Strategy::FamilyBest(Family::Winograd));
        let pbqp = speedup_of(&r, Strategy::Pbqp);
        assert!(
            pbqp > 2.0 * wino,
            "winograd alone should be far from optimal on strided/pointwise networks"
        );
    }
}

#[test]
fn pbqp_wins_every_cell_of_every_figure() {
    let reg = registry();
    for (machine, vendor_vw) in
        [(MachineModel::intel_haswell_like(), 8), (MachineModel::arm_a57_like(), 4)]
    {
        let strategies = figure_strategies(vendor_vw);
        for (name, net) in models::evaluation_models() {
            for threads in [1usize, 4] {
                let r = evaluate_network(&net, &reg, &machine, threads, &strategies);
                let pbqp = speedup_of(&r, Strategy::Pbqp);
                for row in &r {
                    assert!(
                        pbqp + 1e-9 >= row.speedup,
                        "{name}/{}/t{threads}: {} beat PBQP",
                        machine.name,
                        row.strategy.label()
                    );
                }
            }
        }
    }
}

#[test]
fn local_optimal_is_strictly_suboptimal_on_the_evaluation_networks() {
    // §6: fixing a canonical layout "is always outperformed by the optimal
    // selection".
    let reg = registry();
    for machine in [MachineModel::intel_haswell_like(), MachineModel::arm_a57_like()] {
        let cost = AnalyticCost::new(machine, 4);
        let opt = Optimizer::new(&reg, &cost);
        for (name, net) in models::evaluation_models() {
            let pbqp = opt.plan(&net, Strategy::Pbqp).unwrap();
            let lopt = opt.plan(&net, Strategy::LocalOptimalChw).unwrap();
            assert!(
                pbqp.predicted_us < lopt.predicted_us,
                "{name}: PBQP {} !< L.OPT {}",
                pbqp.predicted_us,
                lopt.predicted_us
            );
        }
    }
}

#[test]
fn pbqp_exploits_non_canonical_layouts_and_pays_for_transforms() {
    // The crux of the paper: the optimum inserts layout transformations
    // because their cost is outweighed by faster primitives.
    let reg = registry();
    let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 4);
    let opt = Optimizer::new(&reg, &cost);
    let plan = opt.plan(&models::alexnet(), Strategy::Pbqp).unwrap();
    assert!(plan.transform_count() > 0, "optimal AlexNet plan should use layout transforms");
    assert!(plan.transform_us() > 0.0);
    assert!(
        plan.transform_us() < 0.2 * plan.predicted_us,
        "transforms must stay a small fraction of the total"
    );
}

#[test]
fn figure4_cross_platform_winograd_split() {
    // Figure 4: the large-cache machine picks 2-D winograd variants; the
    // small-cache machine picks mostly 1-D ones.
    let reg = registry();
    let net = models::alexnet();
    let count = |machine: MachineModel| {
        let cost = AnalyticCost::new(machine.clone(), machine.cores);
        let plan = Optimizer::new(&reg, &cost).plan(&net, Strategy::Pbqp).unwrap();
        let one =
            plan.selected_primitives().iter().filter(|(_, n)| n.starts_with("wino1d")).count();
        let two =
            plan.selected_primitives().iter().filter(|(_, n)| n.starts_with("wino2d")).count();
        (one, two)
    };
    let (intel_1d, intel_2d) = count(MachineModel::intel_haswell_like());
    let (arm_1d, arm_2d) = count(MachineModel::arm_a57_like());
    assert_eq!(intel_1d, 0, "the big-cache machine should use 2-D winograd only");
    assert!(intel_2d >= 3);
    assert!(arm_1d > arm_2d, "the embedded machine should prefer 1-D winograd");
}

#[test]
fn conv1_gets_an_im2_primitive_on_both_machines() {
    // Figure 4: AlexNet's strided K=11 conv1 selects an im2 routine with a
    // row-oriented layout on both platforms.
    let reg = registry();
    let net = models::alexnet();
    let conv1 = net.find("conv1").unwrap();
    for machine in [MachineModel::intel_haswell_like(), MachineModel::arm_a57_like()] {
        let cost = AnalyticCost::new(machine, 4);
        let plan = Optimizer::new(&reg, &cost).plan(&net, Strategy::Pbqp).unwrap();
        let (_, prim) = plan
            .selected_primitives()
            .into_iter()
            .find(|(n, _)| *n == conv1)
            .expect("conv1 selected");
        assert!(prim.starts_with("im2row"), "conv1 selected {prim}");
    }
}

#[test]
fn solver_reports_optimality_in_under_a_second_for_all_networks() {
    // §5.4.
    let reg = registry();
    let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 4);
    let opt = Optimizer::new(&reg, &cost);
    for (name, net) in models::evaluation_models() {
        let plan = opt.plan(&net, Strategy::Pbqp).unwrap();
        assert_eq!(plan.optimal, Some(true), "{name}");
        assert!(plan.solve_time_us < 1_000_000.0, "{name}: {} µs", plan.solve_time_us);
    }
}

#[test]
fn absolute_time_orderings_match_tables_2_and_3() {
    let reg = registry();
    for machine in [MachineModel::intel_haswell_like(), MachineModel::arm_a57_like()] {
        for threads in [1usize, 4] {
            let cost = AnalyticCost::new(machine.clone(), threads);
            let opt = Optimizer::new(&reg, &cost);
            for (name, net) in models::evaluation_models() {
                let sum2d = opt.plan(&net, Strategy::Sum2d).unwrap().predicted_us;
                let lopt = opt.plan(&net, Strategy::LocalOptimalChw).unwrap().predicted_us;
                let pbqp = opt.plan(&net, Strategy::Pbqp).unwrap().predicted_us;
                assert!(pbqp < lopt && lopt < sum2d, "{name}/{}/t{threads}", machine.name);
            }
        }
    }
}
