//! Property-based tests over the core invariants:
//!
//! * the reduction-based PBQP solver agrees with exhaustive enumeration;
//! * a plan's predicted cost always decomposes into its parts, and the
//!   PBQP plan is never beaten by any baseline strategy;
//! * layout transformation chains preserve tensor contents;
//! * randomly chosen primitives agree with the reference convolution.

use proptest::prelude::*;

use pbqp_dnn_cost::{AnalyticCost, MachineModel};
use pbqp_dnn_graph::{ConvScenario, DnnGraph, Layer, LayerKind};
use pbqp_dnn_primitives::registry::{full_library, Registry};
use pbqp_dnn_select::{Optimizer, Strategy};
use pbqp_dnn_tensor::transform::{apply_direct, DIRECT_TRANSFORMS};
use pbqp_dnn_tensor::{KernelTensor, Layout, Tensor};
use pbqp_solver::{CostMatrix, PbqpGraph, Solver};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Solver vs exhaustive enumeration on random instances.
    #[test]
    fn pbqp_solver_matches_exhaustive(
        costs in prop::collection::vec(prop::collection::vec(0u32..40, 1..4), 2..5),
        edge_density in 0u32..100,
        seed in 0u64..u64::MAX,
    ) {
        let mut g = PbqpGraph::new();
        let ids: Vec<_> = costs.iter().map(|c| {
            g.add_node(c.iter().map(|&v| f64::from(v)).collect())
        }).collect();
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as u32
        };
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                if next() % 100 < edge_density {
                    let rows = g.node_costs(ids[i]).len();
                    let cols = g.node_costs(ids[j]).len();
                    let m = CostMatrix::from_fn(rows, cols, |_, _| {
                        let v = next() % 25;
                        if v == 0 { f64::INFINITY } else { f64::from(v) }
                    });
                    g.add_edge(ids[i], ids[j], m).unwrap();
                }
            }
        }
        let fast = Solver::new().solve(&g);
        let brute = Solver::new().solve_exhaustive(&g);
        match (fast, brute) {
            (Ok(f), Ok(b)) => {
                prop_assert!(f.optimal);
                prop_assert!((f.total_cost - b.total_cost).abs() < 1e-9);
            }
            (Err(_), Err(_)) => {}
            (f, b) => prop_assert!(false, "divergent: {f:?} vs {b:?}"),
        }
    }

    /// Any chain of registered direct transforms preserves tensor values.
    #[test]
    fn transform_chains_preserve_contents(
        c in 1usize..9,
        h in 1usize..9,
        w in 1usize..9,
        hops in prop::collection::vec(0usize..DIRECT_TRANSFORMS.len(), 1..6),
        seed in 0u64..u64::MAX,
    ) {
        let original = Tensor::random(c, h, w, Layout::Chw, seed);
        let mut t = original.clone();
        for hop in hops {
            // Walk only edges that start at the current layout.
            if let Some(tr) = DIRECT_TRANSFORMS.iter().find(|x| x.from == t.layout()) {
                let _ = hop;
                t = apply_direct(&t, tr.to).unwrap();
            }
        }
        prop_assert!(t.max_abs_diff(&original).unwrap() == 0.0);
    }

    /// A randomly chosen supporting primitive equals the reference.
    #[test]
    fn random_primitive_matches_reference(
        c in 1usize..7,
        hw in 6usize..12,
        k in prop::sample::select(vec![1usize, 3, 5]),
        m in 1usize..6,
        stride in 1usize..3,
        prim_ix in 0usize..1000,
        seed in 0u64..u64::MAX,
    ) {
        let s = ConvScenario::new(c, hw, hw, stride, k, m);
        let reg = Registry::new(full_library());
        let cands = reg.candidates(&s);
        let prim = cands[prim_ix % cands.len()];
        let input = Tensor::random(c, hw, hw, Layout::Chw, seed)
            .to_layout(prim.descriptor().input_layout);
        let kernel = KernelTensor::random(m, c, k, k, seed ^ 0xABCD);
        let got = prim.execute(&input, &kernel, &s, 1).unwrap();
        let want = pbqp_dnn_primitives::reference::sum2d_reference(&input, &kernel, &s);
        let diff = got.max_abs_diff(&want).unwrap();
        // Winograd F(6,3) is the loosest numerically.
        prop_assert!(diff < 5e-2, "{}: {diff}", prim.descriptor().name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// On random conv chains, the PBQP plan cost decomposes exactly and is
    /// never beaten by the canonical-layout local optimum.
    #[test]
    fn pbqp_dominates_local_optimal_on_random_chains(
        specs in prop::collection::vec((1usize..17, prop::sample::select(vec![1usize, 3, 5])), 1..5),
        hw in 8usize..20,
    ) {
        let mut g = DnnGraph::new();
        let mut c = 3usize;
        let mut dims = hw;
        let mut prev = g.add(Layer::new("data", LayerKind::Input { c, h: dims, w: dims }));
        for (i, (m, k)) in specs.into_iter().enumerate() {
            let s = ConvScenario::new(c, dims, dims, 1, k, m);
            let conv = g.add(Layer::new(format!("conv{i}"), LayerKind::Conv(s)));
            g.connect(prev, conv).unwrap();
            let relu = g.add(Layer::new(format!("relu{i}"), LayerKind::Relu));
            g.connect(conv, relu).unwrap();
            prev = relu;
            c = m;
            dims = s.out_h();
        }
        let reg = Registry::new(full_library());
        let cost = AnalyticCost::new(MachineModel::arm_a57_like(), 2);
        let opt = Optimizer::new(&reg, &cost);
        let pbqp = opt.plan(&g, Strategy::Pbqp).unwrap();
        let lopt = opt.plan(&g, Strategy::LocalOptimalChw).unwrap();
        prop_assert!(pbqp.optimal == Some(true));
        prop_assert!(pbqp.predicted_us <= lopt.predicted_us + 1e-6);
        // Cost decomposition: conv + transforms == total (no overhead for
        // the PBQP strategy).
        let parts = pbqp.conv_us() + pbqp.transform_us();
        prop_assert!((parts - pbqp.predicted_us).abs() < 1e-6 * pbqp.predicted_us.max(1.0));
    }
}
