//! Property-based tests over the core invariants:
//!
//! * the reduction-based PBQP solver agrees with exhaustive enumeration;
//! * a plan's predicted cost always decomposes into its parts, and the
//!   PBQP plan is never beaten by any baseline strategy;
//! * layout transformation chains preserve tensor contents;
//! * randomly chosen primitives agree with the reference convolution;
//! * quantize→dequantize round trips are bounded by `scale/2` per
//!   element, exact for on-grid values, and deterministic across runs.
//!
//! The build environment has no crates.io access, so instead of proptest
//! each test derives its random cases from a fixed-seed splitmix64
//! generator — deterministic, but covering the same input space.

use pbqp_dnn_cost::{AnalyticCost, MachineModel};
use pbqp_dnn_graph::{ConvScenario, DnnGraph, Layer, LayerKind};
use pbqp_dnn_primitives::registry::{full_library, Registry};
use pbqp_dnn_select::{Optimizer, Strategy};
use pbqp_dnn_tensor::rng::SplitMix64;
use pbqp_dnn_tensor::transform::{apply_direct, DIRECT_TRANSFORMS};
use pbqp_dnn_tensor::{KernelTensor, Layout, Tensor};
use pbqp_solver::{CostMatrix, PbqpGraph, Solver};

/// Solver vs exhaustive enumeration on random instances.
#[test]
fn pbqp_solver_matches_exhaustive() {
    let mut rng = SplitMix64::new(100);
    for case in 0..24 {
        let nodes = rng.usize(2, 5);
        let edge_density = rng.usize(0, 100);
        let mut g = PbqpGraph::new();
        let ids: Vec<_> = (0..nodes)
            .map(|_| {
                let options = rng.usize(1, 4);
                g.add_node((0..options).map(|_| (rng.usize(0, 40)) as f64).collect())
            })
            .collect();
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                if rng.usize(0, 100) < edge_density {
                    let rows = g.node_costs(ids[i]).len();
                    let cols = g.node_costs(ids[j]).len();
                    let m = CostMatrix::from_fn(rows, cols, |_, _| {
                        let v = rng.usize(0, 25);
                        if v == 0 {
                            f64::INFINITY
                        } else {
                            v as f64
                        }
                    });
                    g.add_edge(ids[i], ids[j], m).unwrap();
                }
            }
        }
        let fast = Solver::new().solve(&g);
        let brute = Solver::new().solve_exhaustive(&g);
        match (fast, brute) {
            (Ok(f), Ok(b)) => {
                assert!(f.optimal, "case {case}");
                assert!((f.total_cost - b.total_cost).abs() < 1e-9, "case {case}");
            }
            (Err(_), Err(_)) => {}
            (f, b) => panic!("case {case} divergent: {f:?} vs {b:?}"),
        }
    }
}

/// Any chain of registered direct transforms preserves tensor values.
#[test]
fn transform_chains_preserve_contents() {
    let mut rng = SplitMix64::new(200);
    for _ in 0..24 {
        let (c, h, w) = (rng.usize(1, 9), rng.usize(1, 9), rng.usize(1, 9));
        let hops = rng.usize(1, 6);
        let original = Tensor::random(c, h, w, Layout::Chw, rng.next_u64());
        let mut t = original.clone();
        for _ in 0..hops {
            // Walk only edges that start at the current layout.
            if let Some(tr) = DIRECT_TRANSFORMS.iter().find(|x| x.from == t.layout()) {
                t = apply_direct(&t, tr.to).unwrap();
            }
        }
        assert!(t.max_abs_diff(&original).unwrap() == 0.0);
    }
}

/// A randomly chosen supporting primitive equals the reference.
#[test]
fn random_primitive_matches_reference() {
    let mut rng = SplitMix64::new(300);
    let reg = Registry::new(full_library());
    for _ in 0..24 {
        let c = rng.usize(1, 7);
        let hw = rng.usize(6, 12);
        let k = [1usize, 3, 5][rng.usize(0, 3)];
        let m = rng.usize(1, 6);
        let stride = rng.usize(1, 3);
        let s = ConvScenario::new(c, hw, hw, stride, k, m);
        let cands = reg.candidates(&s);
        let prim = cands[rng.usize(0, cands.len())];
        let input = Tensor::random(c, hw, hw, Layout::Chw, rng.next_u64())
            .to_layout(prim.descriptor().input_layout);
        let kernel = KernelTensor::random(m, c, k, k, rng.next_u64());
        let got = prim.execute(&input, &kernel, &s, 1).unwrap();
        let want = pbqp_dnn_primitives::reference::sum2d_reference(&input, &kernel, &s);
        let diff = got.max_abs_diff(&want).unwrap();
        // Winograd F(6,3) is the loosest numerically.
        assert!(diff < 5e-2, "{}: {diff}", prim.descriptor().name);
    }
}

/// Quantize→dequantize round trips on random tensors: error bounded by
/// `scale/2` per element, exact round trip for values already on the
/// quantization grid, and bit-identical codes across repeated runs.
#[test]
fn quantize_dequantize_round_trip_properties() {
    use pbqp_dnn_tensor::transform::{dequantize_into, quantize_dynamic_into, quantize_into};
    use pbqp_dnn_tensor::{DType, Repr};
    let mut rng = SplitMix64::new(500);
    for case in 0..24 {
        let (c, h, w) = (rng.usize(1, 9), rng.usize(1, 9), rng.usize(1, 9));
        let layout = Repr::I8_LAYOUTS[rng.usize(0, Repr::I8_LAYOUTS.len())];
        // Stretch the value range so scales vary across cases.
        let scale_up = 1 + rng.usize(0, 50) as i32;
        let base = Tensor::random(c, h, w, layout, rng.next_u64());
        let src =
            Tensor::from_fn(c, h, w, layout, |ci, hi, wi| base.at(ci, hi, wi) * scale_up as f32);

        let mut q = Tensor::empty_dtype(DType::I8);
        let params = quantize_dynamic_into(&src, &mut q);
        let mut back = Tensor::empty();
        dequantize_into(&q, &mut back);

        // Property 1: per-element error bounded by scale/2.
        let bound = params.scale / 2.0 + params.scale * 1e-4;
        for ci in 0..c {
            for hi in 0..h {
                for wi in 0..w {
                    let err = (back.at(ci, hi, wi) - src.at(ci, hi, wi)).abs();
                    assert!(err <= bound, "case {case}: err {err} > {bound}");
                }
            }
        }

        // Property 2: values already on the grid round-trip exactly —
        // requantizing the dequantized tensor reproduces the codes.
        let mut q2 = Tensor::empty_dtype(DType::I8);
        quantize_into(&back, params, &mut q2);
        assert_eq!(q.data_i8(), q2.data_i8(), "case {case}: grid values must be fixed points");

        // Property 3: determinism — same input, same params and codes.
        let mut q3 = Tensor::empty_dtype(DType::I8);
        let params3 = quantize_dynamic_into(&src, &mut q3);
        assert_eq!(params, params3, "case {case}");
        assert_eq!(q.data_i8(), q3.data_i8(), "case {case}");

        // Real zero is always exactly representable.
        assert_eq!(params.dequantize(params.quantize(0.0)), 0.0, "case {case}");
    }
}

/// Int8 op kernels (relu / max pool / avg pool / add) on random quantized
/// tensors: each matches the f32 reference applied to the dequantized
/// codes within the quantization error bound (≤ output scale/2 per
/// element — relu and max pool are exact, they only reorder codes), and
/// repeated execution out of a dirty reused workspace is bit-identical.
#[test]
fn int8_op_kernels_match_f32_reference_within_quant_bound() {
    use pbqp_dnn_graph::PoolKind;
    use pbqp_dnn_primitives::registry::Registry;
    use pbqp_dnn_primitives::{
        ops, registry::mixed_precision_library, OpInputs, OpSpec, Workspace,
    };
    use pbqp_dnn_tensor::transform::{dequantize_into, quantize_dynamic_into};
    use pbqp_dnn_tensor::{DType, Repr};

    let reg = Registry::new(mixed_precision_library());
    let mut rng = SplitMix64::new(700);
    for case in 0..24 {
        let layout = Repr::I8_LAYOUTS[rng.usize(0, Repr::I8_LAYOUTS.len())];
        let (c, h, w) = (rng.usize(1, 7), rng.usize(4, 10), rng.usize(4, 10));
        // Quantized operand plus the dequantized image the f32 reference
        // sees (input quantization error belongs to the input, not the
        // op under test).
        let quantized = |seed: u64, scale: f32| {
            let f = Tensor::from_fn(c, h, w, layout, |ci, hi, wi| {
                let base =
                    Tensor::random(1, 1, 1, Layout::Chw, seed ^ ((ci * 977 + hi * 31 + wi) as u64));
                base.at(0, 0, 0) * scale
            });
            let mut q = Tensor::empty_dtype(DType::I8);
            quantize_dynamic_into(&f, &mut q);
            let mut back = Tensor::empty();
            dequantize_into(&q, &mut back);
            (back, q)
        };
        let (fa, qa) = quantized(rng.next_u64(), 1.0 + rng.usize(0, 20) as f32);
        let (fb, qb) = quantized(rng.next_u64(), 1.0 + rng.usize(0, 20) as f32);

        // Relu: exact (monotone code clamp at the zero point).
        {
            let spec = OpSpec::for_layer(&LayerKind::Relu, vec![(c, h, w)], (c, h, w)).unwrap();
            let kernel = reg
                .op_by_name(&format!("qint8_relu_{}", layout.name().to_ascii_lowercase()))
                .unwrap();
            let operands = [&qa];
            let got = kernel.execute(OpInputs::Slice(&operands), None, &spec).unwrap();
            let mut back = Tensor::empty();
            dequantize_into(&got, &mut back);
            let want = ops::relu(&fa, layout);
            assert_eq!(back.max_abs_diff(&want).unwrap(), 0.0, "case {case} relu {layout}");
        }

        // Pools: max exact, avg within half an output step.
        for (kind, name) in [(PoolKind::Max, "maxpool"), (PoolKind::Avg, "avgpool")] {
            let k = rng.usize(1, 4);
            let stride = rng.usize(1, 3);
            let pad = rng.usize(0, k);
            let layer = LayerKind::Pool { kind, k, stride, pad };
            let oh = (h + 2 * pad - k).div_ceil(stride) + 1;
            let ow = (w + 2 * pad - k).div_ceil(stride) + 1;
            let spec = OpSpec::for_layer(&layer, vec![(c, h, w)], (c, oh, ow)).unwrap();
            let kernel = reg
                .op_by_name(&format!("qint8_{name}_{}", layout.name().to_ascii_lowercase()))
                .unwrap();
            let operands = [&qa];
            let got = kernel.execute(OpInputs::Slice(&operands), None, &spec).unwrap();
            let mut back = Tensor::empty();
            dequantize_into(&got, &mut back);
            let want = ops::pool(&fa, layout, kind, k, stride, pad);
            let diff = back.max_abs_diff(&want).unwrap();
            let bound = match kind {
                PoolKind::Max => 0.0,
                PoolKind::Avg => got.qparams().scale / 2.0 + got.qparams().scale * 1e-4,
            };
            assert!(diff <= bound, "case {case} {name} {layout}: {diff} > {bound}");
        }

        // Add: exact f32 sums, one dynamic requantization — within half
        // an output step of the f32 reference.
        {
            let spec =
                OpSpec::for_layer(&LayerKind::Add, vec![(c, h, w), (c, h, w)], (c, h, w)).unwrap();
            let kernel = reg
                .op_by_name(&format!("qint8_add_{}", layout.name().to_ascii_lowercase()))
                .unwrap();
            let operands = [&qa, &qb];
            let got = kernel.execute(OpInputs::Slice(&operands), None, &spec).unwrap();
            let mut back = Tensor::empty();
            dequantize_into(&got, &mut back);
            let want = ops::add(&[&fa, &fb], layout);
            let diff = back.max_abs_diff(&want).unwrap();
            let bound = got.qparams().scale / 2.0 + got.qparams().scale * 1e-4;
            assert!(diff <= bound, "case {case} add {layout}: {diff} > {bound}");

            // Determinism across dirty scratch reuse: same codes and
            // params from a workspace that already served other calls.
            let mut ws = Workspace::with_req(kernel.workspace_req(&spec));
            let mut out = Tensor::empty_dtype(DType::I8);
            for round in 0..3 {
                ws.reset();
                kernel
                    .execute_into(OpInputs::Slice(&operands), None, &spec, &mut ws, &mut out)
                    .unwrap();
                assert_eq!(out.data_i8(), got.data_i8(), "case {case} round {round}");
                assert_eq!(out.qparams(), got.qparams(), "case {case} round {round}");
            }
        }
    }
}

/// On random conv chains, the PBQP plan cost decomposes exactly and is
/// never beaten by the canonical-layout local optimum.
#[test]
fn pbqp_dominates_local_optimal_on_random_chains() {
    let mut rng = SplitMix64::new(400);
    let reg = Registry::new(full_library());
    let cost = AnalyticCost::new(MachineModel::arm_a57_like(), 2);
    let opt = Optimizer::new(&reg, &cost);
    for _ in 0..12 {
        let layers = rng.usize(1, 5);
        let hw = rng.usize(8, 20);
        let mut g = DnnGraph::new();
        let mut c = 3usize;
        let mut dims = hw;
        let mut prev = g.add(Layer::new("data", LayerKind::Input { c, h: dims, w: dims }));
        for i in 0..layers {
            let m = rng.usize(1, 17);
            let k = [1usize, 3, 5][rng.usize(0, 3)];
            let s = ConvScenario::new(c, dims, dims, 1, k, m);
            let conv = g.add(Layer::new(format!("conv{i}"), LayerKind::Conv(s)));
            g.connect(prev, conv).unwrap();
            let relu = g.add(Layer::new(format!("relu{i}"), LayerKind::Relu));
            g.connect(conv, relu).unwrap();
            prev = relu;
            c = m;
            dims = s.out_h();
        }
        let pbqp = opt.plan(&g, Strategy::Pbqp).unwrap();
        let lopt = opt.plan(&g, Strategy::LocalOptimalChw).unwrap();
        assert_eq!(pbqp.optimal, Some(true));
        assert!(pbqp.predicted_us <= lopt.predicted_us + 1e-6);
        // Cost decomposition: conv + op + transforms == total (no
        // overhead for the PBQP strategy).
        let parts = pbqp.conv_us() + pbqp.op_us() + pbqp.transform_us();
        assert!((parts - pbqp.predicted_us).abs() < 1e-6 * pbqp.predicted_us.max(1.0));
    }
}
