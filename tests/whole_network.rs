//! Cross-crate integration: optimize miniature networks with every
//! strategy, execute the legalized plans on real tensors, and verify each
//! against the independent reference implementation.

use pbqp_dnn_cost::{AnalyticCost, MachineModel};
use pbqp_dnn_graph::models::{micro_alexnet, micro_inception, micro_resnet};
use pbqp_dnn_graph::DnnGraph;
use pbqp_dnn_primitives::registry::{full_library, Registry};
use pbqp_dnn_runtime::{reference_forward, Executor, Weights};
use pbqp_dnn_select::{Optimizer, Strategy};
use pbqp_dnn_tensor::{Layout, Tensor};

fn all_strategies() -> Vec<Strategy> {
    let mut v = vec![
        Strategy::Pbqp,
        Strategy::PbqpHeuristic,
        Strategy::Sum2d,
        Strategy::LocalOptimalChw,
        Strategy::CaffeLike,
        Strategy::VendorLike { vector_width: 8 },
        Strategy::VendorLike { vector_width: 4 },
    ];
    v.extend(Strategy::family_bars());
    v
}

fn check_network(name: &str, net: &DnnGraph, machine: MachineModel) {
    let reg = Registry::new(full_library());
    let cost = AnalyticCost::new(machine, 2);
    let opt = Optimizer::new(&reg, &cost);
    let weights = Weights::random(net, 0xFEED);
    let (c, h, w) = net.infer_shapes().unwrap()[0];
    let input = Tensor::random(c, h, w, Layout::Chw, 0xF00D);
    let oracle = reference_forward(net, &weights, &input);

    for strategy in all_strategies() {
        let plan = opt.plan(net, strategy).unwrap_or_else(|e| panic!("{name}/{strategy:?}: {e}"));
        let out = Executor::new(net, &plan, &reg, &weights)
            .run(&input, 2)
            .unwrap_or_else(|e| panic!("{name}/{strategy:?}: {e}"));
        let diff = out.max_abs_diff(&oracle).unwrap();
        assert!(diff < 1e-2, "{name}/{}: diff {diff}", strategy.label());
    }
}

#[test]
fn micro_alexnet_all_strategies_compute_the_network_function() {
    check_network("micro_alexnet", &micro_alexnet(), MachineModel::intel_haswell_like());
}

#[test]
fn micro_alexnet_on_the_embedded_model_too() {
    check_network("micro_alexnet_arm", &micro_alexnet(), MachineModel::arm_a57_like());
}

#[test]
fn micro_inception_all_strategies_compute_the_network_function() {
    check_network("micro_inception", &micro_inception(), MachineModel::intel_haswell_like());
}

#[test]
fn micro_resnet_all_strategies_compute_the_network_function() {
    // The residual merge (Add) flows through every strategy, layout
    // choice and execution path like any other operator.
    check_network("micro_resnet", &micro_resnet(), MachineModel::intel_haswell_like());
}

/// The acceptance path for first-class operator selection: the ARM-model
/// int8-island plan (conv → relu → pool → conv quantized end to end, no
/// interior conversions) computes the network function within the
/// quantization budget and is executed **bit-identically** by the serial
/// executor, the wavefront scheduler and the front door's
/// `Session::infer`.
#[test]
fn int8_island_plan_executes_bit_identically_across_all_paths() {
    use pbqp_dnn::prelude::{CompileOptions, Compiler, Parallelism};
    use pbqp_dnn_primitives::registry::mixed_precision_library;

    let net = micro_resnet();
    let reg = Registry::new(mixed_precision_library());
    let cost = AnalyticCost::new(MachineModel::arm_a57_like(), 1);
    let plan = Optimizer::new(&reg, &cost).plan(&net, Strategy::Pbqp).unwrap();
    assert!(
        !plan.int8_op_nodes().is_empty(),
        "precondition: relu/pool must join the int8 island\n{plan}"
    );

    let weights = Weights::random(&net, 0x7E57);
    let input = Tensor::random(16, 48, 48, Layout::Chw, 0x1D);
    let exec = Executor::new(&net, &plan, &reg, &weights);
    let serial = exec.run(&input, 1).unwrap();

    // Quantization error budget against the f32 oracle: the stem is
    // int8, the residual block and head are f32.
    let oracle = reference_forward(&net, &weights, &input);
    let maxabs = oracle.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    let diff = serial.max_abs_diff(&oracle).unwrap();
    assert!(diff < 0.05 * maxabs + 0.05, "diff {diff} vs maxabs {maxabs}");

    // Wavefront and intra-op threading never change a bit.
    let wave = exec.run_with(&input, Parallelism::serial().with_inter_op(4)).unwrap();
    assert_eq!(wave.data(), serial.data(), "wavefront diverged");
    let threaded = exec.run(&input, 4).unwrap();
    assert_eq!(threaded.data(), serial.data(), "intra-op threading diverged");

    // The front door serves the same plan bit-identically.
    let model = Compiler::new(
        CompileOptions::new().machine(MachineModel::arm_a57_like()).mixed_precision(true),
    )
    .compile(&net, &weights)
    .unwrap();
    assert_eq!(model.plan().predicted_us.to_bits(), plan.predicted_us.to_bits());
    let engine = model.engine();
    let mut session = engine.session();
    let front_door = session.infer_new(&input).unwrap();
    assert_eq!(front_door.data(), serial.data(), "Session::infer diverged");
}

#[test]
fn pbqp_plan_quality_dominates_on_the_micro_networks() {
    let reg = Registry::new(full_library());
    let cost = AnalyticCost::new(MachineModel::arm_a57_like(), 2);
    let opt = Optimizer::new(&reg, &cost);
    for net in [micro_alexnet(), micro_inception()] {
        let pbqp = opt.plan(&net, Strategy::Pbqp).unwrap();
        assert_eq!(pbqp.optimal, Some(true));
        for s in all_strategies() {
            let p = opt.plan(&net, s).unwrap();
            assert!(pbqp.predicted_us <= p.predicted_us + 1e-6, "{} beat PBQP", s.label());
        }
    }
}

#[test]
fn front_door_engine_matches_the_low_level_executor_bit_for_bit() {
    // The Engine/Session surface is a repackaging of the same compiled
    // schedule the Executor runs — outputs must agree exactly, for every
    // strategy and for wavefront parallelism, on both micro networks.
    use pbqp_dnn::prelude::{CompileOptions, Compiler, Parallelism};

    for net in [micro_alexnet(), micro_inception()] {
        let reg = Registry::new(full_library());
        let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
        let opt = Optimizer::new(&reg, &cost);
        let weights = Weights::random(&net, 0xD00F);
        let (c, h, w) = net.infer_shapes().unwrap()[0];
        let input = Tensor::random(c, h, w, Layout::Chw, 0xABCD);
        for strategy in
            [Strategy::Pbqp, Strategy::CaffeLike, Strategy::VendorLike { vector_width: 8 }]
        {
            let plan = opt.plan(&net, strategy).unwrap();
            let low_level = Executor::new(&net, &plan, &reg, &weights).run(&input, 1).unwrap();

            let model = Compiler::new(CompileOptions::new().strategy(strategy))
                .compile(&net, &weights)
                .unwrap();
            assert_eq!(model.plan().predicted_us.to_bits(), plan.predicted_us.to_bits());
            let engine = model.engine();
            let mut session = engine.session();
            let front_door = session.infer_new(&input).unwrap();
            assert_eq!(front_door.data(), low_level.data(), "{}", strategy.label());

            // Wavefront sessions stay bit-identical to serial ones.
            session.set_parallelism(Parallelism::serial().with_inter_op(4));
            let wave = session.infer_new(&input).unwrap();
            assert_eq!(wave.data(), low_level.data(), "{} wavefront", strategy.label());
        }
    }
}

#[test]
fn transform_chains_in_executed_plans_are_exact() {
    // Force a plan with layout churn: vendor strategy pins blocked layouts,
    // so chains CHW -> CHWc8 -> CHW appear, and execution must still be
    // bit-accurate vs reference.
    let reg = Registry::new(full_library());
    let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
    let opt = Optimizer::new(&reg, &cost);
    let net = micro_inception();
    let plan = opt.plan(&net, Strategy::VendorLike { vector_width: 8 }).unwrap();
    let weights = Weights::random(&net, 3);
    let input = Tensor::random(8, 14, 14, Layout::Chw, 4);
    let out = Executor::new(&net, &plan, &reg, &weights).run(&input, 1).unwrap();
    let oracle = reference_forward(&net, &weights, &input);
    assert!(out.allclose(&oracle, 1e-3).unwrap());
}
