//! Cross-crate integration: optimize miniature networks with every
//! strategy, execute the legalized plans on real tensors, and verify each
//! against the independent reference implementation.

use pbqp_dnn_cost::{AnalyticCost, MachineModel};
use pbqp_dnn_graph::{ConvScenario, DnnGraph, Layer, LayerKind, PoolKind};
use pbqp_dnn_primitives::registry::{full_library, Registry};
use pbqp_dnn_runtime::{reference_forward, Executor, Weights};
use pbqp_dnn_select::{Optimizer, Strategy};
use pbqp_dnn_tensor::{Layout, Tensor};

/// AlexNet's structure at 1/4 scale: strided K11 head, K5 middle, K3 tail,
/// LRN and pooling in between.
fn micro_alexnet() -> DnnGraph {
    let mut g = DnnGraph::new();
    let mut prev = g.add(Layer::new("data", LayerKind::Input { c: 3, h: 57, w: 57 }));
    let mut tack = |g: &mut DnnGraph, layer: Layer, prev: &mut pbqp_dnn_graph::NodeId| {
        let id = g.add(layer);
        g.connect(*prev, id).unwrap();
        *prev = id;
    };
    tack(&mut g, Layer::new("conv1", LayerKind::Conv(ConvScenario::new(3, 57, 57, 4, 11, 12).with_pad(0))), &mut prev);
    tack(&mut g, Layer::new("relu1", LayerKind::Relu), &mut prev);
    tack(&mut g, Layer::new("norm1", LayerKind::Lrn), &mut prev);
    tack(&mut g, Layer::new("pool1", LayerKind::Pool { kind: PoolKind::Max, k: 3, stride: 2, pad: 0 }), &mut prev);
    tack(&mut g, Layer::new("conv2", LayerKind::Conv(ConvScenario::new(12, 6, 6, 1, 5, 24))), &mut prev);
    tack(&mut g, Layer::new("relu2", LayerKind::Relu), &mut prev);
    tack(&mut g, Layer::new("conv3", LayerKind::Conv(ConvScenario::new(24, 6, 6, 1, 3, 16))), &mut prev);
    tack(&mut g, Layer::new("fc", LayerKind::FullyConnected { out: 10 }), &mut prev);
    tack(&mut g, Layer::new("prob", LayerKind::Softmax), &mut prev);
    g
}

/// A GoogleNet-style module: fan-out into 1x1 / 3x3 / 5x5 / pool-proj
/// branches joined by concat.
fn micro_inception() -> DnnGraph {
    let mut g = DnnGraph::new();
    let data = g.add(Layer::new("data", LayerKind::Input { c: 8, h: 14, w: 14 }));
    let conv = |c, k, m| LayerKind::Conv(ConvScenario::new(c, 14, 14, 1, k, m));
    let b1 = g.add(Layer::new("1x1", conv(8, 1, 4)));
    let b2r = g.add(Layer::new("3x3_reduce", conv(8, 1, 4)));
    let b2 = g.add(Layer::new("3x3", conv(4, 3, 6)));
    let b3r = g.add(Layer::new("5x5_reduce", conv(8, 1, 2)));
    let b3 = g.add(Layer::new("5x5", conv(2, 5, 4)));
    let pool = g.add(Layer::new("pool", LayerKind::Pool { kind: PoolKind::Max, k: 3, stride: 1, pad: 1 }));
    let b4 = g.add(Layer::new("pool_proj", conv(8, 1, 2)));
    let cat = g.add(Layer::new("concat", LayerKind::Concat));
    let out = g.add(Layer::new("out", conv(16, 3, 8)));
    for (a, b) in [
        (data, b1), (data, b2r), (b2r, b2), (data, b3r), (b3r, b3), (data, pool), (pool, b4),
        (b1, cat), (b2, cat), (b3, cat), (b4, cat), (cat, out),
    ] {
        g.connect(a, b).unwrap();
    }
    g
}

fn all_strategies() -> Vec<Strategy> {
    let mut v = vec![
        Strategy::Pbqp,
        Strategy::PbqpHeuristic,
        Strategy::Sum2d,
        Strategy::LocalOptimalChw,
        Strategy::CaffeLike,
        Strategy::VendorLike { vector_width: 8 },
        Strategy::VendorLike { vector_width: 4 },
    ];
    v.extend(Strategy::family_bars());
    v
}

fn check_network(name: &str, net: &DnnGraph, machine: MachineModel) {
    let reg = Registry::new(full_library());
    let cost = AnalyticCost::new(machine, 2);
    let opt = Optimizer::new(&reg, &cost);
    let weights = Weights::random(net, 0xFEED);
    let (c, h, w) = net.infer_shapes().unwrap()[0];
    let input = Tensor::random(c, h, w, Layout::Chw, 0xF00D);
    let oracle = reference_forward(net, &weights, &input);

    for strategy in all_strategies() {
        let plan = opt.plan(net, strategy).unwrap_or_else(|e| panic!("{name}/{strategy:?}: {e}"));
        let out = Executor::new(net, &plan, &reg, &weights)
            .run(&input, 2)
            .unwrap_or_else(|e| panic!("{name}/{strategy:?}: {e}"));
        let diff = out.max_abs_diff(&oracle).unwrap();
        assert!(diff < 1e-2, "{name}/{}: diff {diff}", strategy.label());
    }
}

#[test]
fn micro_alexnet_all_strategies_compute_the_network_function() {
    check_network("micro_alexnet", &micro_alexnet(), MachineModel::intel_haswell_like());
}

#[test]
fn micro_alexnet_on_the_embedded_model_too() {
    check_network("micro_alexnet_arm", &micro_alexnet(), MachineModel::arm_a57_like());
}

#[test]
fn micro_inception_all_strategies_compute_the_network_function() {
    check_network("micro_inception", &micro_inception(), MachineModel::intel_haswell_like());
}

#[test]
fn pbqp_plan_quality_dominates_on_the_micro_networks() {
    let reg = Registry::new(full_library());
    let cost = AnalyticCost::new(MachineModel::arm_a57_like(), 2);
    let opt = Optimizer::new(&reg, &cost);
    for net in [micro_alexnet(), micro_inception()] {
        let pbqp = opt.plan(&net, Strategy::Pbqp).unwrap();
        assert_eq!(pbqp.optimal, Some(true));
        for s in all_strategies() {
            let p = opt.plan(&net, s).unwrap();
            assert!(pbqp.predicted_us <= p.predicted_us + 1e-6, "{} beat PBQP", s.label());
        }
    }
}

#[test]
fn transform_chains_in_executed_plans_are_exact() {
    // Force a plan with layout churn: vendor strategy pins blocked layouts,
    // so chains CHW -> CHWc8 -> CHW appear, and execution must still be
    // bit-accurate vs reference.
    let reg = Registry::new(full_library());
    let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
    let opt = Optimizer::new(&reg, &cost);
    let net = micro_inception();
    let plan = opt.plan(&net, Strategy::VendorLike { vector_width: 8 }).unwrap();
    let weights = Weights::random(&net, 3);
    let input = Tensor::random(8, 14, 14, Layout::Chw, 4);
    let out = Executor::new(&net, &plan, &reg, &weights).run(&input, 1).unwrap();
    let oracle = reference_forward(&net, &weights, &input);
    assert!(out.allclose(&oracle, 1e-3).unwrap());
}
