//! Online re-optimization end-to-end, through the front door: a
//! deliberately mis-modeled engine converges under sampled live traffic
//! to (the near-tie neighborhood of) the offline measured-cost plan,
//! no request is ever dropped or blocked across hot-swaps, every
//! response is bit-exact against its own generation's plan, and
//! quarantine reroutes and autotune swaps arbitrate to one consistent
//! serving state.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use pbqp_dnn::cost::CostTable;
use pbqp_dnn::prelude::*;
use pbqp_dnn::runtime::Executor;
use pbqp_dnn::select::{ExecutionPlan, Optimizer};
use pbqp_dnn::{faults, graph::NodeId};

/// Failpoints and the sampler gate are process-global; every test in
/// this binary serializes on one guard and disarms on entry.
fn guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    let g = match LOCK.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    faults::disarm_all();
    g
}

/// Runs `f` with the default panic hook silenced: contained panics are
/// expected and their backtraces would drown the test output.
fn quiet<R>(f: impl FnOnce() -> R) -> R {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let r = f();
    drop(std::panic::take_hook());
    std::panic::set_hook(hook);
    r
}

/// A plan's selected `(node, kernel)` pairs, convs and ops together.
fn selections(plan: &ExecutionPlan) -> Vec<(NodeId, String)> {
    plan.selected_primitives()
        .into_iter()
        .chain(plan.selected_op_kernels())
        .map(|(n, k)| (n, k.to_owned()))
        .collect()
}

/// The convergence acceptance demo (ISSUE tentpole): an engine compiled
/// against a machine model that wildly overstates the int8 speedup
/// serves live traffic, the sampler + background re-solve correct it,
/// and the settled plan matches the offline measured-cost plan modulo
/// near-ties — priced under the offline measured table it lands within
/// tolerance of the offline optimum (two independent wall-clock
/// profiles can legitimately swap near-tied kernels, so selection
/// equality is asserted through cost equivalence, not string equality).
#[test]
fn mis_modeled_engine_converges_under_live_traffic_without_dropping_requests() {
    let _g = guard();

    let net = models::micro_resnet();
    let weights = Weights::random(&net, 0x77);
    let mut wrong = MachineModel::intel_haswell_like();
    wrong.int8_speedup = 30.0;
    wrong.int8_pointwise_speedup = 30.0;
    let model = Compiler::new(CompileOptions::new().machine(wrong).mixed_precision(true))
        .compile(&net, &weights)
        .expect("compiles");

    // The paper's offline methodology on *this* host: measured costs,
    // PBQP — the ground truth the online loop should rediscover.
    let probe = MeasuredCost::new(1, 3).with_scale(4);
    let offline_table = CostTable::profile(&net, model.registry(), &probe);
    let shapes = net.infer_shapes().unwrap();
    let optimizer = Optimizer::new(model.registry(), &probe);
    let offline_plan =
        optimizer.plan_with_table(&net, &shapes, &offline_table, Strategy::Pbqp).unwrap();
    let offline_us = optimizer.price_plan(&net, &shapes, &offline_table, &offline_plan);
    assert!(offline_us > 0.0);
    let close_to_offline = |plan: &ExecutionPlan| {
        optimizer.price_plan(&net, &shapes, &offline_table, plan) <= offline_us * 1.30
    };

    let engine = model.engine();
    let initially_close = close_to_offline(&engine.active_plan());

    assert!(engine.enable_autotune(
        AutotuneConfig::new()
            .with_sample_rate(1)
            .with_min_samples(40)
            .with_min_node_samples(3)
            .with_divergence_threshold(0.25)
            .with_cooldown(Duration::from_millis(100))
            .with_poll_interval(Duration::from_millis(10))
            .with_fill(CandidateFill::Probe { reps: 3, scale: 4 }),
    ));
    assert!(!engine.enable_autotune(AutotuneConfig::new()), "enable is once per engine");

    let inputs: Vec<Tensor> =
        (0..4).map(|i| Tensor::random(16, 48, 48, Layout::Chw, 0xC0 + i)).collect();

    // Serve live traffic, capturing every response whose serving
    // generation is unambiguous (unchanged across the request) together
    // with that generation's plan.
    let mut session = engine.session();
    let mut plan_of: HashMap<u64, Arc<ExecutionPlan>> = HashMap::new();
    let mut captures: Vec<(u64, usize, Tensor)> = Vec::new();
    let started = Instant::now();
    let mut stable_since = Instant::now();
    let mut last_gen = engine.health().plan_generation;
    loop {
        for (i, input) in inputs.iter().enumerate() {
            let before = engine.health().plan_generation;
            let out = session.infer_new(input).expect("no request is ever dropped");
            let after = engine.health().plan_generation;
            if before != after {
                continue; // a swap raced this request; attribution is ambiguous
            }
            if let std::collections::hash_map::Entry::Vacant(e) = plan_of.entry(before) {
                let plan = engine.active_plan();
                if engine.health().plan_generation == before {
                    e.insert(plan);
                }
            }
            captures.push((before, i, out));
        }
        let health = engine.health();
        if health.plan_generation != last_gen {
            last_gen = health.plan_generation;
            stable_since = Instant::now();
        }
        let settled = health.samples >= 40
            && stable_since.elapsed() > Duration::from_millis(600)
            && (initially_close || health.reoptimizations >= 1);
        if settled {
            break;
        }
        assert!(
            started.elapsed() < Duration::from_secs(120),
            "autotune did not settle: {health:?}"
        );
    }
    drop(session);

    let health = engine.health();
    assert!(health.samples > 0, "{health:?}");
    assert!(health.divergence.is_some(), "live traffic produced a divergence signal: {health:?}");
    if !initially_close {
        assert!(health.reoptimizations >= 1, "mis-modeled plan was never corrected: {health:?}");
        assert!(health.plan_generation >= 2, "{health:?}");
    }

    // Acceptance: the settled plan matches the offline measured-cost
    // plan modulo near-ties.
    let final_plan = engine.active_plan();
    assert!(
        close_to_offline(&final_plan),
        "settled plan prices at {} µs vs offline optimum {} µs under the offline table",
        optimizer.price_plan(&net, &shapes, &offline_table, &final_plan),
        offline_us,
    );

    // Every captured response is bit-exact against its own generation's
    // plan executed through the serial reference executor.
    assert!(!captures.is_empty());
    let mut checked = 0;
    for (gen, i, out) in &captures {
        let Some(plan) = plan_of.get(gen) else { continue };
        let direct = Executor::new(&net, plan, model.registry(), model.weights())
            .run(&inputs[*i], 1)
            .expect("generation plan executes directly");
        assert_eq!(
            out.data(),
            direct.data(),
            "generation {gen}: response diverged from its own plan's serial execution"
        );
        checked += 1;
    }
    assert!(checked > 0, "at least one capture has an attributable plan");
}

/// Swap arbitration: a kernel fault quarantines and reroutes while the
/// autotune loop is live and eager to swap. Whatever interleaving
/// happens, the engine settles on one consistent serving state that
/// never selects a quarantined kernel, and every request is served.
#[test]
fn quarantine_and_autotune_swaps_arbitrate_to_one_consistent_state() {
    let _g = guard();

    let net = models::micro_mixed();
    let weights = Weights::random(&net, 0x1817);
    let model = Compiler::new(CompileOptions::new().mixed_precision(true))
        .compile(&net, &weights)
        .expect("compiles");
    let engine = model.engine();

    // Analytic fill keeps re-solves instant; tiny gates and cooldown
    // keep the autotune loop constantly eager, maximizing the window
    // for a swap race with the quarantine path.
    assert!(engine.enable_autotune(
        AutotuneConfig::new()
            .with_sample_rate(1)
            .with_min_samples(4)
            .with_min_node_samples(1)
            .with_divergence_threshold(0.01)
            .with_cooldown(Duration::from_millis(5))
            .with_poll_interval(Duration::from_millis(2))
            .with_fill(CandidateFill::Analytic(MachineModel::intel_haswell_like())),
    ));

    let input = Tensor::random(16, 20, 20, Layout::Chw, 0xFA);
    let mut session = engine.session();

    // Warm the sampler so the loop has observations to act on.
    for _ in 0..10 {
        session.infer_new(&input).expect("warmup serves");
    }

    // Now fault a kernel dispatch mid-stream: the 3rd dispatch panics,
    // forcing a quarantine + reroute while the autotune thread may be
    // mid-swap.
    faults::arm(faults::KERNEL_DISPATCH, "nth(3):panic(arbitration chaos)").unwrap();
    for _ in 0..10 {
        quiet(|| session.infer_new(&input)).expect("faulted stream still serves");
    }
    faults::disarm_all();

    // Let the autotune loop run a few more cycles against the
    // quarantine, then settle.
    let deadline = Instant::now() + Duration::from_secs(30);
    let health = loop {
        session.infer_new(&input).expect("post-fault serves");
        let h = engine.health();
        if !h.quarantined.is_empty() || Instant::now() > deadline {
            break h;
        }
    };
    std::thread::sleep(Duration::from_millis(50));

    let health = if health.quarantined.is_empty() { engine.health() } else { health };
    assert!(health.contained_panics >= 1, "{health:?}");
    assert!(!health.quarantined.is_empty(), "{health:?}");
    assert!(health.plan_generation >= 2, "enable bump + at least one swap: {health:?}");

    // The single consistent outcome: whatever plan is serving, it
    // selects no quarantined kernel — the autotune path validates
    // against the quarantine list under the same lock the quarantine
    // path swaps under.
    let active = engine.active_plan();
    let selected = selections(&active);
    for (node, kernel) in &engine.health().quarantined {
        let id = net.find(node).expect("quarantined node exists");
        assert!(
            !selected.iter().any(|(n, k)| *n == id && k == kernel),
            "active plan still selects quarantined ({node}, {kernel})"
        );
    }

    // And the settled engine serves bit-exactly per its own plan (only
    // asserted when no swap raced the request — generation stable
    // across the capture).
    let before = engine.health().plan_generation;
    let out = session.infer_new(&input).expect("settled serve");
    let plan = engine.active_plan();
    let after = engine.health().plan_generation;
    if before == after {
        let direct = Executor::new(&net, &plan, model.registry(), model.weights())
            .run(&input, 1)
            .expect("active plan executes directly");
        assert_eq!(
            out.data(),
            direct.data(),
            "settled response diverged from the active plan's serial execution"
        );
    }
}
